//! 2-D convolution layers (standard and depthwise), NCHW layout.

use crate::init::Init;
use crate::layer::{Layer, Param};
use crate::rng::SeededRng;
use crate::tensor::Tensor;

fn conv_output_hw(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    let oh = (h + 2 * padding - kernel) / stride + 1;
    let ow = (w + 2 * padding - kernel) / stride + 1;
    (oh, ow)
}

/// Standard 2-D convolution over NCHW tensors.
///
/// Weights have shape `[out_channels, in_channels, k, k]`; biases `[out_channels]`.
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// let mut rng = SeededRng::new(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
/// let y = conv.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Init::KaimingNormal.build(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            rng,
        );
        Self {
            weight: Param::new("conv.weight", weight),
            bias: Param::new("conv.bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(input.rank(), 4, "Conv2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d channel mismatch"
        );
    }
}

impl Layer for Conv2d {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.check_input(input);
        self.cached_input = Some(input.clone());
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let x = input.data();
        let wgt = self.weight.value.data();
        let bias = self.bias.value.data();
        let odata = out.data_mut();
        for b in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[oc];
                        for ic in 0..c {
                            for ky in 0..k {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * c + ic) * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * c + ic) * k + ky) * k + kx;
                                    acc += x[xi] * wgt[wi];
                                }
                            }
                        }
                        odata[((b * self.out_channels + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        assert_eq!(
            grad_output.shape(),
            &[n, self.out_channels, oh, ow],
            "Conv2d backward shape mismatch"
        );
        let mut grad_input = Tensor::zeros(input.shape());
        let x = input.data();
        let wgt = self.weight.value.data();
        let go = grad_output.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_input.data_mut();
        for b in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((b * self.out_channels + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ic in 0..c {
                            for ky in 0..k {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * c + ic) * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * c + ic) * k + ky) * k + kx;
                                    gw[wi] += g * x[xi];
                                    gi[xi] += g * wgt[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        vec![self.out_channels, oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        // 2 FLOPs per MAC, over out_c * oh * ow output positions each summing
        // in_c * k * k products, plus the bias add.
        let macs = self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel;
        (2 * macs + self.out_channels * oh * ow) as u64
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// Depthwise 2-D convolution: each input channel is convolved with its own
/// single-channel kernel (the building block of MobileNet-style models).
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Param,
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = kernel * kernel;
        let weight = Init::KaimingNormal.build(&[channels, kernel, kernel], fan_in, fan_in, rng);
        Self {
            weight: Param::new("dwconv.weight", weight),
            bias: Param::new("dwconv.bias", Tensor::zeros(&[channels])),
            channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "DepthwiseConv2d expects NCHW input");
        assert_eq!(input.shape()[1], self.channels, "channel mismatch");
        self.cached_input = Some(input.clone());
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.data();
        let wgt = self.weight.value.data();
        let bias = self.bias.value.data();
        let odata = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[ch];
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                                let wi = (ch * k + ky) * k + kx;
                                acc += x[xi] * wgt[wi];
                            }
                        }
                        odata[((b * c + ch) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let mut grad_input = Tensor::zeros(input.shape());
        let x = input.data();
        let wgt = self.weight.value.data();
        let go = grad_output.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_input.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((b * c + ch) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[ch] += g;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                                let wi = (ch * k + ky) * k + kx;
                                gw[wi] += g * x[xi];
                                gi[xi] += g * wgt[wi];
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        vec![self.channels, oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        let macs = self.channels * oh * ow * self.kernel * self.kernel;
        (2 * macs + self.channels * oh * ow) as u64
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn output_hw_formula() {
        assert_eq!(conv_output_hw(8, 8, 3, 1, 1), (8, 8));
        assert_eq!(conv_output_hw(8, 8, 3, 2, 1), (4, 4));
        assert_eq!(conv_output_hw(7, 7, 3, 1, 0), (5, 5));
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 1, 1, 1]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let y = conv.forward(&x, true);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones, no padding: output = sum of inputs.
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 1, 2, 2]);
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.5);
    }

    #[test]
    fn conv_stride_and_padding_shapes() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(3, 6, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 6, 8, 8]);
        assert_eq!(conv.output_shape(&[3, 16, 16]), vec![6, 8, 8]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = SeededRng::new(2);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_gradients(Box::new(conv), &[2, 2, 5, 5], 2e-2, &mut rng);
    }

    #[test]
    fn conv_gradcheck_strided() {
        let mut rng = SeededRng::new(3);
        let conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        check_layer_gradients(Box::new(conv), &[1, 2, 6, 6], 2e-2, &mut rng);
    }

    #[test]
    fn depthwise_preserves_channels() {
        let mut rng = SeededRng::new(4);
        let mut dw = DepthwiseConv2d::new(5, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 5, 8, 8], &mut rng);
        let y = dw.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut rng = SeededRng::new(5);
        let dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        check_layer_gradients(Box::new(dw), &[2, 3, 5, 5], 2e-2, &mut rng);
    }

    #[test]
    fn depthwise_flops_less_than_full_conv() {
        let mut rng = SeededRng::new(6);
        let conv = Conv2d::new(16, 16, 3, 1, 1, &mut rng);
        let dw = DepthwiseConv2d::new(16, 3, 1, 1, &mut rng);
        assert!(dw.flops(&[16, 8, 8]) < conv.flops(&[16, 8, 8]) / 8);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_wrong_channels() {
        let mut rng = SeededRng::new(7);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let _ = conv.forward(&x, true);
    }
}
