//! The [`Sequential`] container.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A container that applies layers in order.
///
/// `Sequential` is itself a [`Layer`], so containers can be nested (which is
/// how residual-block bodies and the AppealNet heads are built).
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new(vec![
///     Box::new(Dense::new(10, 32, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(32, 2, &mut rng)),
/// ]);
/// let x = Tensor::randn(&[4, 10], &mut rng);
/// assert_eq!(net.forward(&x, true).shape(), &[4, 2]);
/// ```
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Box<dyn Layer>> {
        self.layers.iter()
    }

    /// Zeroes the gradients of every parameter in the container.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Produces a human-readable per-layer summary (name, output shape, FLOPs)
    /// for an input of the given (batch-less) shape.
    pub fn summary(&self, input_shape: &[usize]) -> String {
        let mut shape = input_shape.to_vec();
        let mut lines = vec![format!(
            "{:<18} {:<18} {:>12}",
            "layer", "output shape", "flops"
        )];
        let mut total = 0u64;
        for layer in &self.layers {
            let flops = layer.flops(&shape);
            shape = layer.output_shape(&shape);
            total += flops;
            lines.push(format!(
                "{:<18} {:<18} {:>12}",
                layer.name(),
                format!("{shape:?}"),
                flops
            ));
        }
        lines.push(format!("{:<18} {:<18} {:>12}", "TOTAL", "", total));
        lines.join("\n")
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers: ", self.layers.len())?;
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "{})", names.join(" -> "))
    }
}

impl Layer for Sequential {
    fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Feed the borrowed input straight to the first layer instead of
        // cloning it up front; only an empty container clones.
        let mut layers = self.layers.iter_mut();
        let mut x = match layers.next() {
            Some(first) => first.forward(input, train),
            None => input.clone(),
        };
        for layer in layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let mut shape = input_shape.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops(&shape);
            shape = layer.output_shape(&shape);
        }
        total
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn quantize_weights(&mut self) -> Vec<crate::quant::QuantLayerReport> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.quantize_weights())
            .collect()
    }

    fn is_quantized(&self) -> bool {
        self.layers.iter().any(|l| l.is_quantized())
    }

    fn begin_calibration(&mut self) {
        for layer in &mut self.layers {
            layer.begin_calibration();
        }
    }

    fn end_calibration(&mut self) {
        for layer in &mut self.layers {
            layer.end_calibration();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::layers::{Dense, Relu};
    use crate::rng::SeededRng;

    fn small_mlp(rng: &mut SeededRng) -> Sequential {
        Sequential::new(vec![
            Box::new(Dense::new(4, 8, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, rng)),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = SeededRng::new(0);
        let mut net = small_mlp(&mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        assert_eq!(net.forward(&x, true).shape(), &[5, 3]);
        assert_eq!(net.output_shape(&[4]), vec![3]);
    }

    #[test]
    fn flops_sum_over_layers() {
        let mut rng = SeededRng::new(1);
        let net = small_mlp(&mut rng);
        let expected = (2 * 4 * 8 + 8) + 8 + (2 * 8 * 3 + 3);
        assert_eq!(net.flops(&[4]), expected as u64);
    }

    #[test]
    fn params_collects_all_children() {
        let mut rng = SeededRng::new(2);
        let mut net = small_mlp(&mut rng);
        assert_eq!(net.params_mut().len(), 4);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut rng = SeededRng::new(3);
        let mut net = small_mlp(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        assert!(net.params_mut().iter().any(|p| p.grad.norm_sq() > 0.0));
        net.zero_grad();
        assert!(net.params_mut().iter().all(|p| p.grad.norm_sq() == 0.0));
    }

    #[test]
    fn gradcheck_composed() {
        // Use a smooth activation so finite differences do not cross a ReLU
        // kink at the hidden layer.
        use crate::layers::Sigmoid;
        let mut rng = SeededRng::new(4);
        let net = Sequential::new(vec![
            Box::new(Dense::new(4, 8, &mut rng)),
            Box::new(Sigmoid::new()),
            Box::new(Dense::new(8, 3, &mut rng)),
        ]);
        check_layer_gradients(Box::new(net), &[3, 4], 2e-2, &mut rng);
    }

    #[test]
    fn summary_mentions_every_layer() {
        let mut rng = SeededRng::new(5);
        let net = small_mlp(&mut rng);
        let s = net.summary(&[4]);
        assert!(s.contains("Dense"));
        assert!(s.contains("Relu"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn nested_sequential_works() {
        let mut rng = SeededRng::new(6);
        let inner = small_mlp(&mut rng);
        let mut outer = Sequential::new(vec![Box::new(inner), Box::new(Relu::new())]);
        let x = Tensor::randn(&[2, 4], &mut rng);
        assert_eq!(outer.forward(&x, true).shape(), &[2, 3]);
    }
}
