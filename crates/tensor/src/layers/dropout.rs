//! Inverted dropout.

use crate::layer::Layer;
use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; at evaluation
/// time the layer is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self {
            p,
            rng: rng.split(),
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.bernoulli(keep) { scale } else { 0.0 })
            .collect();
        let data = input
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape()).expect("shape preserved")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_output.clone(),
            Some(mask) => {
                let data = grad_output
                    .data()
                    .iter()
                    .zip(mask.iter())
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(data, grad_output.shape()).expect("shape preserved")
            }
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(0);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut rng = SeededRng::new(1);
        let mut d = Dropout::new(0.3, &mut rng);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "zero fraction {frac}");
    }

    #[test]
    fn expectation_is_preserved() {
        let mut rng = SeededRng::new(2);
        let mut d = Dropout::new(0.4, &mut rng);
        let x = Tensor::ones(&[200, 200]);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.02);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut rng = SeededRng::new(3);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[10, 10]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[10, 10]));
        // Gradient must be zero exactly where the activation was dropped.
        for (a, b) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn rejects_invalid_probability() {
        let mut rng = SeededRng::new(4);
        let _ = Dropout::new(1.0, &mut rng);
    }
}
