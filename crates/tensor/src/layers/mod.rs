//! Layer implementations.
//!
//! Every layer implements [`crate::Layer`] with an explicit backward pass and
//! per-sample FLOP accounting. The set covers what the AppealNet model zoo
//! needs: dense layers, standard / depthwise convolutions, batch
//! normalization, ReLU/sigmoid activations, max / average / global-average
//! pooling, dropout, residual blocks, channel shuffle and a [`Sequential`]
//! container.

mod activations;
mod conv;
mod dense;
mod dropout;
mod extra_activations;
mod flatten;
mod norm;
mod pool;
mod residual;
mod sequential;
mod shuffle;

pub use activations::{Relu, Sigmoid};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use extra_activations::{LeakyRelu, Tanh};
pub use flatten::Flatten;
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, GlobalAvgPool2d, MaxPool2d};
pub use residual::Residual;
pub use sequential::Sequential;
pub use shuffle::ChannelShuffle;
