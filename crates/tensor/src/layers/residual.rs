//! Residual block: `y = body(x) + shortcut(x)`.

use crate::layer::{Layer, Param};
use crate::layers::Sequential;
use crate::tensor::Tensor;

/// A residual block with an optional projection shortcut.
///
/// When the body changes the tensor shape (channel count or spatial stride),
/// supply a `shortcut` that performs the matching projection (typically a
/// 1×1 strided convolution); otherwise the identity shortcut is used.
#[derive(Clone)]
pub struct Residual {
    body: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Self {
            body,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(body: Sequential, shortcut: Sequential) -> Self {
        Self {
            body,
            shortcut: Some(shortcut),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(body={:?}, shortcut={})",
            self.body,
            if self.shortcut.is_some() {
                "projection"
            } else {
                "identity"
            }
        )
    }
}

impl Layer for Residual {
    fn clear_cache(&mut self) {
        self.body.clear_cache();
        if let Some(s) = &mut self.shortcut {
            s.clear_cache();
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main = self.body.forward(input, train);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(input, train),
            None => input.clone(),
        };
        assert_eq!(
            main.shape(),
            skip.shape(),
            "residual body and shortcut must produce equal shapes"
        );
        main.add(&skip)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let grad_main = self.body.backward(grad_output);
        let grad_skip = match &mut self.shortcut {
            Some(s) => s.backward(grad_output),
            None => grad_output.clone(),
        };
        grad_main.add(&grad_skip)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.body.params_mut();
        if let Some(s) = &mut self.shortcut {
            params.extend(s.params_mut());
        }
        params
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        self.body.output_shape(input_shape)
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let body = self.body.flops(input_shape);
        let skip = self
            .shortcut
            .as_ref()
            .map(|s| s.flops(input_shape))
            .unwrap_or(0);
        let add = self
            .body
            .output_shape(input_shape)
            .iter()
            .product::<usize>() as u64;
        body + skip + add
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn quantize_weights(&mut self) -> Vec<crate::quant::QuantLayerReport> {
        let mut reports = self.body.quantize_weights();
        if let Some(s) = &mut self.shortcut {
            reports.extend(s.quantize_weights());
        }
        reports
    }

    fn is_quantized(&self) -> bool {
        self.body.is_quantized() || self.shortcut.as_ref().is_some_and(|s| s.is_quantized())
    }

    fn begin_calibration(&mut self) {
        self.body.begin_calibration();
        if let Some(s) = &mut self.shortcut {
            s.begin_calibration();
        }
    }

    fn end_calibration(&mut self) {
        self.body.end_calibration();
        if let Some(s) = &mut self.shortcut {
            s.end_calibration();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::layers::{BatchNorm2d, Conv2d, Dense, Relu};
    use crate::rng::SeededRng;

    #[test]
    fn identity_shortcut_adds_input() {
        let mut rng = SeededRng::new(0);
        // Body that outputs all zeros: conv with zero weights and bias.
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        for p in conv.params_mut() {
            p.value.fill(0.0);
        }
        let mut block = Residual::new(Sequential::new(vec![Box::new(conv)]));
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = block.forward(&x, true);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn projection_shortcut_matches_changed_shape() {
        let mut rng = SeededRng::new(1);
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, 3, 2, 1, &mut rng)),
            Box::new(BatchNorm2d::new(4)),
            Box::new(Relu::new()),
        ]);
        let shortcut = Sequential::new(vec![Box::new(Conv2d::new(2, 4, 1, 2, 0, &mut rng))]);
        let mut block = Residual::with_shortcut(body, shortcut);
        let x = Tensor::randn(&[2, 2, 8, 8], &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
        assert_eq!(block.output_shape(&[2, 8, 8]), vec![4, 4, 4]);
    }

    #[test]
    fn gradcheck_identity_residual_mlp() {
        let mut rng = SeededRng::new(2);
        let body = Sequential::new(vec![
            Box::new(Dense::new(6, 6, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(6, 6, &mut rng)),
        ]);
        let block = Residual::new(body);
        check_layer_gradients(Box::new(block), &[3, 6], 2e-2, &mut rng);
    }

    #[test]
    fn gradcheck_projection_residual_conv() {
        let mut rng = SeededRng::new(3);
        let body = Sequential::new(vec![Box::new(Conv2d::new(2, 3, 3, 1, 1, &mut rng))]);
        let shortcut = Sequential::new(vec![Box::new(Conv2d::new(2, 3, 1, 1, 0, &mut rng))]);
        let block = Residual::with_shortcut(body, shortcut);
        check_layer_gradients(Box::new(block), &[1, 2, 4, 4], 2e-2, &mut rng);
    }

    #[test]
    fn flops_include_both_paths_and_add() {
        let mut rng = SeededRng::new(4);
        let body = Sequential::new(vec![Box::new(Conv2d::new(2, 2, 3, 1, 1, &mut rng))]);
        let shortcut = Sequential::new(vec![Box::new(Conv2d::new(2, 2, 1, 1, 0, &mut rng))]);
        let block = Residual::with_shortcut(body, shortcut);
        let body_only = Residual::new(Sequential::new(vec![Box::new(Conv2d::new(
            2, 2, 3, 1, 1, &mut rng,
        ))]));
        assert!(block.flops(&[2, 4, 4]) > body_only.flops(&[2, 4, 4]));
    }
}
