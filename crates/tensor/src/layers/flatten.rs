//! Flatten layer: collapses all non-batch dimensions.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Reshapes `[n, d1, d2, ...]` into `[n, d1*d2*...]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn clear_cache(&mut self) {
        self.input_shape = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert!(input.rank() >= 2, "Flatten expects at least [batch, ...]");
        self.input_shape = train.then(|| input.shape().to_vec());
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest]).expect("element count unchanged")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before forward");
        grad_output.reshape(shape).expect("element count unchanged")
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn flatten_roundtrip() {
        let mut rng = SeededRng::new(0);
        let mut flatten = Flatten::new();
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let y = flatten.forward(&x, true);
        assert_eq!(y.shape(), &[2, 60]);
        let g = flatten.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_has_zero_flops() {
        assert_eq!(Flatten::new().flops(&[3, 4, 4]), 0);
    }
}
