//! Pooling layers (max, average, global average), NCHW layout.

use crate::layer::Layer;
use crate::tensor::Tensor;

fn pool_output_hw(h: usize, w: usize, kernel: usize, stride: usize) -> (usize, usize) {
    ((h - kernel) / stride + 1, (w - kernel) / stride + 1)
}

/// 2-D max pooling.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    /// Flat input index chosen for each output element, cached for backward.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self {
            kernel,
            stride,
            argmax: None,
            input_shape: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn clear_cache(&mut self) {
        self.argmax = None;
        self.input_shape = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "MaxPool2d expects NCHW input");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = pool_output_hw(h, w, self.kernel, self.stride);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        // The winner-index table exists only for backward; eval passes skip
        // the allocation.
        let mut argmax = train.then(|| vec![0usize; n * c * oh * ow]);
        let x = input.data();
        let odata = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let xi = ((b * c + ch) * h + iy) * w + ix;
                                if x[xi] > best {
                                    best = x[xi];
                                    best_idx = xi;
                                }
                            }
                        }
                        let oi = ((b * c + ch) * oh + oy) * ow + ox;
                        odata[oi] = best;
                        if let Some(table) = argmax.as_mut() {
                            table[oi] = best_idx;
                        }
                    }
                }
            }
        }
        self.argmax = argmax;
        self.input_shape = train.then(|| input.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let shape = self.input_shape.as_ref().expect("backward before forward");
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.data_mut();
        for (oi, &xi) in argmax.iter().enumerate() {
            gi[xi] += grad_output.data()[oi];
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = pool_output_hw(input_shape[1], input_shape[2], self.kernel, self.stride);
        vec![input_shape[0], oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// 2-D average pooling.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self {
            kernel,
            stride,
            input_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn clear_cache(&mut self) {
        self.input_shape = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "AvgPool2d expects NCHW input");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = pool_output_hw(h, w, self.kernel, self.stride);
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.data();
        let odata = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                acc += x[((b * c + ch) * h + iy) * w + ix];
                            }
                        }
                        odata[((b * c + ch) * oh + oy) * ow + ox] = acc * norm;
                    }
                }
            }
        }
        self.input_shape = train.then(|| input.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = pool_output_hw(h, w, self.kernel, self.stride);
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.data_mut();
        let go = grad_output.data();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((b * c + ch) * oh + oy) * ow + ox] * norm;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                gi[((b * c + ch) * h + iy) * w + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = pool_output_hw(input_shape[1], input_shape[2], self.kernel, self.stride);
        vec![input_shape[0], oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// The standard final spatial reduction in efficient CNN architectures.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool2d {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for GlobalAvgPool2d {
    fn clear_cache(&mut self) {
        self.input_shape = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "GlobalAvgPool2d expects NCHW input");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        self.input_shape = train.then(|| input.shape().to_vec());
        let mut out = Tensor::zeros(&[n, c]);
        let x = input.data();
        let norm = 1.0 / (h * w) as f32;
        let odata = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let mut acc = 0.0;
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    acc += x[base + i];
                }
                odata[b * c + ch] = acc * norm;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let norm = 1.0 / (h * w) as f32;
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let g = grad_output.data()[b * c + ch] * norm;
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    gi[base + i] = g;
                }
            }
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0]]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::rng::SeededRng;

    #[test]
    fn maxpool_picks_maximum() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x, true);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avgpool_averages() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn global_avg_pool_shape_and_values() {
        let mut pool = GlobalAvgPool2d::new();
        let x =
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 2.0]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut rng = SeededRng::new(10);
        check_layer_gradients(
            Box::new(MaxPool2d::new(2, 2)),
            &[2, 2, 4, 4],
            2e-2,
            &mut rng,
        );
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = SeededRng::new(11);
        check_layer_gradients(
            Box::new(AvgPool2d::new(2, 2)),
            &[2, 2, 4, 4],
            2e-2,
            &mut rng,
        );
    }

    #[test]
    fn global_avgpool_gradcheck() {
        let mut rng = SeededRng::new(12);
        check_layer_gradients(
            Box::new(GlobalAvgPool2d::new()),
            &[2, 3, 4, 4],
            2e-2,
            &mut rng,
        );
    }
}
