//! Additional elementwise activations (tanh, leaky ReLU).
//!
//! These are not used by the default AppealNet model zoo but are part of the
//! layer library so downstream users can build their own little/big
//! architectures with the activation functions common in efficient CNNs.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Hyperbolic tangent activation.
#[derive(Debug, Default, Clone)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation layer.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Layer for Tanh {
    fn clear_cache(&mut self) {
        self.output = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.output = if train { Some(out.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        grad_output.zip(out, |g, y| g * (1.0 - y * y))
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        4 * input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Leaky ReLU: `y = x` for `x > 0`, `y = slope·x` otherwise.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is not in `[0, 1)`.
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope must be in [0, 1)");
        Self { slope, mask: None }
    }

    /// The configured negative-side slope.
    pub fn slope(&self) -> f32 {
        self.slope
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.mask = train.then(|| input.data().iter().map(|&x| x > 0.0).collect());
        let slope = self.slope;
        input.map(|x| if x > 0.0 { x } else { slope * x })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(mask.len(), grad_output.len(), "grad shape mismatch");
        let slope = self.slope;
        let data = grad_output
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { slope * g })
            .collect();
        Tensor::from_vec(data, grad_output.shape()).expect("shape preserved")
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "LeakyRelu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::rng::SeededRng;

    #[test]
    fn tanh_saturates_and_is_odd() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-20.0, 0.0, 20.0], &[3]).unwrap();
        let y = t.forward(&x, true);
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradcheck() {
        let mut rng = SeededRng::new(1);
        check_layer_gradients(Box::new(Tanh::new()), &[3, 4], 2e-2, &mut rng);
    }

    #[test]
    fn leaky_relu_applies_slope_on_negative_side() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap();
        let y = l.forward(&x, true);
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = l.backward(&Tensor::ones(&[2]));
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn leaky_relu_gradcheck() {
        let mut rng = SeededRng::new(2);
        check_layer_gradients(Box::new(LeakyRelu::new(0.2)), &[3, 5], 2e-2, &mut rng);
    }

    #[test]
    fn leaky_relu_default_slope() {
        assert!((LeakyRelu::default().slope() - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slope must be in")]
    fn leaky_relu_rejects_bad_slope() {
        let _ = LeakyRelu::new(1.5);
    }
}
