//! Batch normalization over the channel dimension of NCHW tensors.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Batch normalization for convolutional feature maps.
///
/// Normalizes each channel over the batch and spatial dimensions, then
/// applies a learnable per-channel scale (`gamma`) and shift (`beta`).
/// Running statistics are tracked with exponential moving averages and used
/// when `train == false`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    std_inv: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new("bn.gamma", Tensor::ones(&[channels])),
            beta: Param::new("bn.beta", Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm2d {
    fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.channels,
            "BatchNorm2d channel mismatch"
        );
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let per_channel = (n * h * w) as f32;
        let x = input.data();
        let mut out = Tensor::zeros(input.shape());
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();

        if !train {
            // Eval path: normalize against the running statistics in place,
            // with no batch-statistic, x_hat or cache allocations — this is
            // the serving hot path. Drop any stale training cache so a
            // backward after an eval forward panics (like every other layer)
            // instead of silently using a previous batch's statistics.
            self.cache = None;
            let o = out.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * h * w;
                    let mean = self.running_mean[ch];
                    let std_inv = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                    for i in 0..h * w {
                        let normed = (x[base + i] - mean) * std_inv;
                        o[base + i] = gamma[ch] * normed + beta[ch];
                    }
                }
            }
            return out;
        }

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for b in 0..n {
            for (ch, m) in mean.iter_mut().enumerate() {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    *m += x[base + i];
                }
            }
        }
        for m in &mut mean {
            *m /= per_channel;
        }
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    let d = x[base + i] - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= per_channel;
        }
        for ch in 0..c {
            self.running_mean[ch] =
                (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
            self.running_var[ch] =
                (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
        }

        let std_inv: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(input.shape());
        {
            let xh = x_hat.data_mut();
            let o = out.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * h * w;
                    for i in 0..h * w {
                        let normed = (x[base + i] - mean[ch]) * std_inv[ch];
                        xh[base + i] = normed;
                        o[base + i] = gamma[ch] * normed + beta[ch];
                    }
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            std_inv,
            input_shape: input.shape().to_vec(),
        });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward(train)");
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let m = (n * h * w) as f32;
        let go = grad_output.data();
        let xh = cache.x_hat.data();
        let gamma = self.gamma.value.data();

        // Per-channel reductions needed by the batch-norm backward formula.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    sum_dy[ch] += go[base + i];
                    sum_dy_xhat[ch] += go[base + i] * xh[base + i];
                }
            }
        }
        // Parameter gradients.
        {
            let g_gamma = self.gamma.grad.data_mut();
            let g_beta = self.beta.grad.data_mut();
            for ch in 0..c {
                g_gamma[ch] += sum_dy_xhat[ch];
                g_beta[ch] += sum_dy[ch];
            }
        }
        // Input gradient:
        // dx = gamma * std_inv / m * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                let k = gamma[ch] * cache.std_inv[ch] / m;
                for i in 0..h * w {
                    gi[base + i] =
                        k * (m * go[base + i] - sum_dy[ch] - xh[base + i] * sum_dy_xhat[ch]);
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        4 * input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::rng::SeededRng;

    #[test]
    fn normalizes_to_zero_mean_unit_var_in_train_mode() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], &mut rng)
            .scale(5.0)
            .map(|v| v + 10.0);
        let y = bn.forward(&x, true);
        // Per channel statistics of the output should be ~N(0,1) (gamma=1, beta=0).
        let (n, c, h, w) = (8, 3, 4, 4);
        for ch in 0..c {
            let mut vals = Vec::new();
            for b in 0..n {
                let base = (b * c + ch) * h * w;
                vals.extend_from_slice(&y.data()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = SeededRng::new(2);
        let mut bn = BatchNorm2d::new(2);
        // Run several training batches so running stats adapt.
        for _ in 0..50 {
            let x = Tensor::randn(&[16, 2, 2, 2], &mut rng).map(|v| v * 2.0 + 3.0);
            bn.forward(&x, true);
        }
        let x = Tensor::randn(&[16, 2, 2, 2], &mut rng).map(|v| v * 2.0 + 3.0);
        let y = bn.forward(&x, false);
        // Output in eval mode should be roughly standardized too.
        assert!((y.mean()).abs() < 0.3);
    }

    #[test]
    fn gradcheck() {
        let mut rng = SeededRng::new(3);
        let bn = BatchNorm2d::new(2);
        check_layer_gradients(Box::new(bn), &[4, 2, 3, 3], 3e-2, &mut rng);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let mut bn = BatchNorm2d::new(7);
        assert_eq!(bn.param_count(), 14);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn eval_forward_clears_training_cache() {
        let mut rng = SeededRng::new(4);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        bn.forward(&x, true);
        bn.forward(&x, false);
        let _ = bn.backward(&Tensor::ones(&[4, 2, 3, 3]));
    }
}
