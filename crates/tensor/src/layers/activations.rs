//! Elementwise activation layers.

use crate::kernels::elementwise;
use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = x > 0 ? x : 0`.
///
/// Forward and backward run on the vectorized elementwise kernels
/// ([`crate::kernels::elementwise`]); the backward mask is stored as
/// all-ones/all-zeros words so the gradient select is a single bitwise AND
/// on every ISA backend.
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Option<Vec<u32>>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = vec![0.0f32; input.len()];
        if train {
            // The sign mask exists only for backward; eval passes skip it.
            let mut mask = vec![0u32; input.len()];
            elementwise::relu_fwd_mask(input.data(), &mut out, &mut mask);
            self.mask = Some(mask);
        } else {
            self.mask = None;
            elementwise::relu_fwd(input.data(), &mut out);
        }
        Tensor::from_vec(out, input.shape()).expect("shape preserved")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(mask.len(), grad_output.len(), "ReLU grad shape mismatch");
        let mut data = vec![0.0f32; grad_output.len()];
        elementwise::relu_bwd(grad_output.data(), mask, &mut data);
        Tensor::from_vec(data, grad_output.shape()).expect("shape preserved")
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Logistic sigmoid: `y = 1 / (1 + exp(-x))`.
#[derive(Debug, Default, Clone)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation layer.
    pub fn new() -> Self {
        Self { output: None }
    }

    /// The sigmoid function applied to a scalar.
    pub fn apply(x: f32) -> f32 {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    }
}

impl Layer for Sigmoid {
    fn clear_cache(&mut self) {
        self.output = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(Sigmoid::apply);
        self.output = if train { Some(out.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        grad_output.zip(out, |g, y| g * y * (1.0 - y))
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        4 * input_shape.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::rng::SeededRng;

    #[test]
    fn relu_clamps_negative() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::ones(&[2]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-50.0, 0.0, 50.0], &[3]).unwrap();
        let y = s.forward(&x, true);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_is_numerically_stable_for_large_negative() {
        assert!(Sigmoid::apply(-1000.0).is_finite());
        assert!(Sigmoid::apply(1000.0).is_finite());
    }

    #[test]
    fn relu_gradcheck() {
        let mut rng = SeededRng::new(7);
        check_layer_gradients(Box::new(Relu::new()), &[3, 5], 1e-2, &mut rng);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut rng = SeededRng::new(8);
        check_layer_gradients(Box::new(Sigmoid::new()), &[3, 5], 1e-2, &mut rng);
    }
}
