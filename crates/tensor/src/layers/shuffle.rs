//! Channel shuffle (the ShuffleNet building block).

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Channel shuffle: splits channels into `groups`, transposes the group and
/// per-group-channel axes, and flattens back. Enables information flow
/// between channel groups in grouped/depthwise architectures.
#[derive(Debug, Clone)]
pub struct ChannelShuffle {
    groups: usize,
    input_shape: Option<Vec<usize>>,
}

impl ChannelShuffle {
    /// Creates a channel-shuffle layer with the given number of groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        Self {
            groups,
            input_shape: None,
        }
    }

    fn permute(&self, input: &Tensor, inverse: bool) -> Tensor {
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(
            c % self.groups,
            0,
            "channels ({c}) must be divisible by groups ({})",
            self.groups
        );
        let per_group = c / self.groups;
        let mut out = Tensor::zeros(shape);
        let x = input.data();
        let o = out.data_mut();
        let plane = h * w;
        for b in 0..n {
            for g in 0..self.groups {
                for j in 0..per_group {
                    // Forward: channel g*per_group + j  ->  j*groups + g.
                    let (src, dst) = if !inverse {
                        (g * per_group + j, j * self.groups + g)
                    } else {
                        (j * self.groups + g, g * per_group + j)
                    };
                    let src_base = (b * c + src) * plane;
                    let dst_base = (b * c + dst) * plane;
                    o[dst_base..dst_base + plane].copy_from_slice(&x[src_base..src_base + plane]);
                }
            }
        }
        out
    }
}

impl Layer for ChannelShuffle {
    fn clear_cache(&mut self) {
        self.input_shape = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "ChannelShuffle expects NCHW input");
        self.input_shape = train.then(|| input.shape().to_vec());
        self.permute(input, false)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.permute(grad_output, true)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "ChannelShuffle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn shuffle_then_inverse_is_identity() {
        let mut rng = SeededRng::new(0);
        let mut shuffle = ChannelShuffle::new(2);
        let x = Tensor::randn(&[2, 6, 3, 3], &mut rng);
        let y = shuffle.forward(&x, true);
        let back = shuffle.backward(&y);
        assert!(back.max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn shuffle_moves_channels() {
        // Channels labelled by constant value; groups=2 over 4 channels:
        // [0,1,2,3] -> [0,2,1,3]
        let mut shuffle = ChannelShuffle::new(2);
        let mut data = Vec::new();
        for ch in 0..4 {
            data.extend(std::iter::repeat_n(ch as f32, 4));
        }
        let x = Tensor::from_vec(data, &[1, 4, 2, 2]).unwrap();
        let y = shuffle.forward(&x, true);
        let channel_value = |t: &Tensor, ch: usize| t.data()[ch * 4];
        assert_eq!(channel_value(&y, 0), 0.0);
        assert_eq!(channel_value(&y, 1), 2.0);
        assert_eq!(channel_value(&y, 2), 1.0);
        assert_eq!(channel_value(&y, 3), 3.0);
    }

    #[test]
    #[should_panic(expected = "divisible by groups")]
    fn rejects_indivisible_channels() {
        let mut shuffle = ChannelShuffle::new(3);
        let x = Tensor::zeros(&[1, 4, 2, 2]);
        let _ = shuffle.forward(&x, true);
    }
}
