//! Basic classification metrics.

use crate::tensor::Tensor;

/// Fraction of rows of `logits` whose argmax equals the label.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or the label count does not match.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.shape()[0], labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    correct as f32 / labels.len() as f32
}

/// Per-class confusion counts: `counts[actual][predicted]`.
///
/// # Panics
///
/// Panics if any label or prediction is `>= num_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<u32>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut counts = vec![vec![0u32; num_classes]; num_classes];
    for (&p, &y) in predictions.iter().zip(labels.iter()) {
        assert!(
            p < num_classes && y < num_classes,
            "class index out of range"
        );
        counts[y][p] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 5.0, 1.0, 9.0], &[3, 2]).unwrap();
        // argmax per row: 0, 1, 1
        assert!((accuracy(&logits, &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 1.0);
    }

    #[test]
    fn empty_batch_gives_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_totals() {
        let preds = vec![0, 1, 1, 2, 0];
        let labels = vec![0, 1, 2, 2, 1];
        let cm = confusion_matrix(&preds, &labels, 3);
        let total: u32 = cm.iter().flatten().sum();
        assert_eq!(total, 5);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[2][1], 1);
        assert_eq!(cm[2][2], 1);
        assert_eq!(cm[1][0], 1);
    }
}
