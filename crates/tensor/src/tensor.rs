//! The [`Tensor`] type: a contiguous, row-major `f32` n-dimensional array.
//!
//! The operation set is intentionally small — exactly what the layers in
//! [`crate::layers`] and the AppealNet training loop need — but each
//! operation is implemented carefully and tested (including property tests).

use crate::error::TensorError;
use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use appeal_tensor::Tensor;
///
/// # fn main() -> Result<(), appeal_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor of standard-normal samples.
    pub fn randn(shape: &[usize], rng: &mut SeededRng) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor of uniform samples on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn rand_uniform(shape: &[usize], low: f32, high: f32, rng: &mut SeededRng) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.uniform(low, high)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Returns a view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        self.data[row * self.shape[1] + col]
    }

    /// Sets the element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.rank(), 2, "set2 requires a rank-2 tensor");
        let cols = self.shape[1];
        self.data[row * cols + col] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Returns the `i`-th row of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.rank(), 2, "row requires a rank-2 tensor");
        let c = self.shape[1];
        Self {
            shape: vec![c],
            data: self.data[i * c..(i + 1) * c].to_vec(),
        }
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn stack_rows(rows: &[Tensor]) -> Self {
        assert!(!rows.is_empty(), "stack_rows requires at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for r in rows {
            assert_eq!(r.len(), c, "all rows must have equal length");
            data.extend_from_slice(r.data());
        }
        Self {
            shape: vec![rows.len(), c],
            data,
        }
    }

    /// Selects a subset of rows of a rank-2 (or higher, treated as `[n, rest]`) tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or the tensor is rank 0.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        assert!(self.rank() >= 1, "select_rows requires rank >= 1");
        let n = self.shape[0];
        let row_len: usize = self.shape[1..].iter().product::<usize>().max(1);
        let mut data = Vec::with_capacity(indices.len() * row_len);
        for &i in indices {
            assert!(i < n, "row index {i} out of bounds for {n} rows");
            data.extend_from_slice(&self.data[i * row_len..(i + 1) * row_len]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Self { shape, data }
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition (the residual-add primitive), on the vectorized
    /// elementwise kernel.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op requires equal shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        let mut data = vec![0.0f32; self.data.len()];
        crate::kernels::elementwise::add(&self.data, &other.data, &mut data);
        Self {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combination with an arbitrary function.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op requires equal shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other * alpha` into `self` in place (vectorized axpy; one
    /// multiply and one add per element, like the scalar loop it replaced).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_inplace shape mismatch");
        crate::kernels::elementwise::axpy(alpha, &other.data, &mut self.data);
    }

    /// Multiplies every element by a scalar, returning a new tensor
    /// (vectorized).
    pub fn scale(&self, alpha: f32) -> Self {
        let mut data = vec![0.0f32; self.data.len()];
        crate::kernels::elementwise::scale(&self.data, alpha, &mut data);
        Self {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of a rank-1 tensor (ties broken by first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        (0..self.shape[0]).map(|i| self.row(i).argmax()).collect()
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Sum over rows of a rank-2 tensor, producing a rank-1 tensor of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Self {
        assert_eq!(self.rank(), 2, "sum_rows requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; c];
        for i in 0..r {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.data[i * c + j];
            }
        }
        Self {
            shape: vec![c],
            data: out,
        }
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs on the cache-blocked kernel in [`crate::kernels`] (register-tiled
    /// microkernel, packed panels, rayon row-parallel for large problems).
    /// Results are bit-identical to the original naive `i-k-j` loop: every
    /// output element accumulates its products in ascending inner-dimension
    /// order regardless of blocking or thread count.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::with_thread_scratch(|scratch| {
            crate::kernels::gemm_into(
                m,
                k,
                n,
                &self.data,
                &other.data,
                crate::kernels::GemmInit::Zero,
                &mut out,
                &mut scratch.packs,
            );
        });
        Self {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Fused `self x other + bias` (bias broadcast over rows): bit-identical
    /// to [`Tensor::matmul`] followed by [`Tensor::add_row_broadcast`], but
    /// allocates no intermediate tensor (the bias pass runs in place over
    /// the GEMM output). This is the dense-layer forward primitive.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches (same contract as the unfused pair).
    pub fn matmul_bias(&self, other: &Tensor, bias: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "matmul_bias lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_bias rhs must be rank 2");
        assert_eq!(bias.rank(), 1, "matmul_bias bias must be rank 1");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_bias inner dimensions differ: {k} vs {k2}");
        assert_eq!(bias.len(), n, "bias length must equal number of columns");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::with_thread_scratch(|scratch| {
            crate::kernels::gemm_bias_cols(
                m,
                k,
                n,
                &self.data,
                &other.data,
                &bias.data,
                &mut out,
                &mut scratch.packs,
            );
        });
        Self {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Adds a rank-1 bias of length `cols` to every row of a rank-2 tensor
    /// (vectorized column broadcast).
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires rank-2 input");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let c = self.shape[1];
        assert_eq!(bias.len(), c, "bias length must equal number of columns");
        let mut out = self.clone();
        if c > 0 {
            crate::kernels::elementwise::bias_add_rows(&mut out.data, &bias.data);
        }
        out
    }

    // ------------------------------------------------------------------
    // Numerics helpers
    // ------------------------------------------------------------------

    /// Returns `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference between two tensors of equal shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ..., {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_shapes() {
        assert_eq!(Tensor::zeros(&[2, 3]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2, 2], 3.0).mean(), 3.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
    }

    #[test]
    fn from_vec_rejects_bad_lengths() {
        let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeDataMismatch { .. }));
    }

    #[test]
    fn reshape_preserves_data_and_rejects_mismatch() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn matmul_against_hand_computed_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[5, 5], &mut rng);
        let i = Tensor::eye(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_panics_on_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_bias_matches_unfused_pair_bitwise() {
        let mut rng = SeededRng::new(11);
        for &(m, k, n) in &[(1usize, 3usize, 4usize), (5, 17, 9), (33, 64, 65)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let bias = Tensor::randn(&[n], &mut rng);
            let fused = a.matmul_bias(&b, &bias);
            let unfused = a.matmul(&b).add_row_broadcast(&bias);
            assert_eq!(fused.shape(), unfused.shape());
            for (x, y) in fused.data().iter().zip(unfused.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[3, 7], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.add_scaled_inplace(&b, 0.5);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.argmax_rows(), vec![0, 0]);
        assert_eq!(t.sum_rows().data(), &[4.0, -2.0]);
        assert_eq!(t.norm_sq(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn rows_and_selection() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        assert_eq!(t.row(2).data(), &[6.0, 7.0, 8.0]);
        let sel = t.select_rows(&[3, 0]);
        assert_eq!(sel.shape(), &[2, 3]);
        assert_eq!(sel.data(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn stack_rows_roundtrip() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
            Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap(),
        ];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.row(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn add_row_broadcast() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(0).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn finiteness_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 1.0], &[2]).unwrap();
        assert!(a.all_finite());
        assert_eq!(a.max_abs_diff(&b), 1.0);
        let nan = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(!nan.all_finite());
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let small = Tensor::zeros(&[2]);
        let large = Tensor::zeros(&[100]);
        assert!(!format!("{small:?}").is_empty());
        assert!(format!("{large:?}").contains("100 elems"));
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}

#[cfg(test)]
mod proptests {
    //! Property tests over seeded random inputs.
    //!
    //! Originally written with `proptest`; rewritten as deterministic
    //! seeded-case loops because this build environment is offline. Each test
    //! checks the same algebraic property over many random shapes/values.

    use super::*;

    /// Yields `cases` random small matrices as `(rows, cols, data)`.
    fn small_matrices(cases: usize) -> impl Iterator<Item = (usize, usize, Vec<f32>)> {
        let mut rng = SeededRng::new(0x5eed_cafe);
        (0..cases).map(move |_| {
            let r = 1 + rng.below(5);
            let c = 1 + rng.below(5);
            let data: Vec<f32> = (0..r * c).map(|_| rng.uniform(-10.0, 10.0)).collect();
            (r, c, data)
        })
    }

    #[test]
    fn transpose_is_involution() {
        for (r, c, data) in small_matrices(64) {
            let t = Tensor::from_vec(data, &[r, c]).unwrap();
            assert_eq!(t.transpose().transpose(), t);
        }
    }

    #[test]
    fn matmul_identity_right() {
        for (r, c, data) in small_matrices(64) {
            let t = Tensor::from_vec(data, &[r, c]).unwrap();
            let prod = t.matmul(&Tensor::eye(c));
            assert!(prod.max_abs_diff(&t) < 1e-5);
        }
    }

    #[test]
    fn add_commutes() {
        let mut rng = SeededRng::new(42);
        for (r, c, data) in small_matrices(64) {
            let a = Tensor::from_vec(data, &[r, c]).unwrap();
            let b = Tensor::randn(&[r, c], &mut rng);
            assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-6);
        }
    }

    #[test]
    fn scale_distributes_over_add() {
        let mut rng = SeededRng::new(43);
        for (r, c, data) in small_matrices(64) {
            let alpha = rng.uniform(-3.0, 3.0);
            let a = Tensor::from_vec(data.clone(), &[r, c]).unwrap();
            let b = Tensor::from_vec(data.iter().map(|x| x * 0.5).collect(), &[r, c]).unwrap();
            let lhs = a.add(&b).scale(alpha);
            let rhs = a.scale(alpha).add(&b.scale(alpha));
            assert!(lhs.max_abs_diff(&rhs) < 1e-4);
        }
    }

    #[test]
    fn sum_rows_matches_total() {
        for (r, c, data) in small_matrices(64) {
            let t = Tensor::from_vec(data, &[r, c]).unwrap();
            let by_rows = t.sum_rows().sum();
            assert!((by_rows - t.sum()).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_is_associative_on_small_squares() {
        for seed in 0u64..32 {
            let mut rng = SeededRng::new(seed);
            let n = 1 + rng.below(3);
            let a = Tensor::randn(&[n, n], &mut rng);
            let b = Tensor::randn(&[n, n], &mut rng);
            let c = Tensor::randn(&[n, n], &mut rng);
            let lhs = a.matmul(&b).matmul(&c);
            let rhs = a.matmul(&b.matmul(&c));
            assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }
    }
}
