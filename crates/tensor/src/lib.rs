//! # appeal-tensor
//!
//! A from-scratch, dependency-light tensor and neural-network layer library.
//!
//! This crate is the training/inference substrate for the AppealNet
//! reproduction: the original paper trains its models with PyTorch, which is
//! not available in this environment, so the pieces the joint-training
//! algorithm actually needs are implemented here directly:
//!
//! * [`Tensor`] — a contiguous `f32` n-dimensional array with the small set
//!   of operations needed by the layers (elementwise math, matrix multiply,
//!   reductions).
//! * [`kernels`] — the compute-kernel layer underneath: a cache-blocked,
//!   register-tiled GEMM (with a rayon row-parallel path), explicit SIMD
//!   with runtime ISA dispatch, im2col/col2im convolution lowering and
//!   reusable scratch arenas. By default every kernel is bit-identical to
//!   the naive reference loops it replaced; the opt-in `fast-kernels`
//!   feature adds an FMA tier under the `deterministic-per-build` contract
//!   (see [`kernels::numeric_contract`] and `docs/DETERMINISM.md`).
//! * [`Layer`] — the layer abstraction with explicit `forward` / `backward`
//!   passes and per-layer FLOP accounting.
//! * [`layers`] — dense, convolution (standard / depthwise / grouped),
//!   batch-norm, activations, pooling, dropout, residual blocks and the
//!   [`layers::Sequential`] container.
//! * [`loss`] — per-sample softmax cross-entropy and binary cross-entropy,
//!   including the per-sample weighting required by AppealNet's joint loss
//!   (Eq. 9 / Eq. 10 of the paper).
//! * [`optim`] — SGD, SGD with momentum, and Adam, with gradient clipping
//!   and learning-rate schedules.
//!
//! # Example
//!
//! ```
//! use appeal_tensor::prelude::*;
//!
//! # fn main() -> Result<(), appeal_tensor::TensorError> {
//! let mut rng = SeededRng::new(42);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(16, 3, &mut rng)),
//! ]);
//! let x = Tensor::randn(&[8, 4], &mut rng);
//! let logits = net.forward(&x, true);
//! assert_eq!(logits.shape(), &[8, 3]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the explicit-SIMD backend
// (`kernels::simd` / `kernels::elementwise`) opts back in with a scoped
// `allow` — it is the only place in the workspace permitted to use `unsafe`
// (std::arch intrinsics behind runtime CPU-feature detection).
#![deny(unsafe_code)]

pub mod error;
pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod quant;
pub mod rng;
pub mod tensor;

pub use error::TensorError;
pub use layer::{Layer, Param};
pub use rng::SeededRng;
pub use tensor::Tensor;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::layer::{Layer, Param};
    pub use crate::layers::{
        AvgPool2d, BatchNorm2d, ChannelShuffle, Conv2d, Dense, DepthwiseConv2d, Dropout, Flatten,
        GlobalAvgPool2d, MaxPool2d, Relu, Residual, Sequential, Sigmoid,
    };
    pub use crate::loss::{BinaryCrossEntropy, SoftmaxCrossEntropy};
    pub use crate::optim::{Adam, GradClip, LrSchedule, Optimizer, Sgd};
    pub use crate::rng::SeededRng;
    pub use crate::tensor::Tensor;
    pub use crate::TensorError;
}
