//! Error type shared by the tensor library.

use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Most hot-path operations (`matmul`, elementwise arithmetic) panic on shape
/// mismatch instead, because a mismatch there is a programming error in the
/// layer implementation rather than a recoverable condition. `TensorError` is
/// returned by the user-facing constructors and reshaping helpers where the
/// caller supplies the shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Length of the provided buffer.
        data_len: usize,
    },
    /// A reshape was requested to a shape with a different number of elements.
    ReshapeMismatch {
        /// Shape of the existing tensor.
        from: Vec<usize>,
        /// Requested new shape.
        to: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A tensor with an empty shape (zero elements) was supplied where data is required.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "data length {data_len} does not match shape {shape:?} (expected {})",
                shape.iter().product::<usize>()
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor of shape {from:?} into {to:?}: element counts differ"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for tensor of rank {rank}")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_data_mismatch() {
        let err = TensorError::ShapeDataMismatch {
            shape: vec![2, 3],
            data_len: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("data length 5"));
        assert!(msg.contains("expected 6"));
    }

    #[test]
    fn display_reshape_mismatch() {
        let err = TensorError::ReshapeMismatch {
            from: vec![2, 2],
            to: vec![3],
        };
        assert!(err.to_string().contains("cannot reshape"));
    }

    #[test]
    fn display_axis_out_of_range() {
        let err = TensorError::AxisOutOfRange { axis: 4, rank: 2 };
        assert!(err.to_string().contains("axis 4"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
