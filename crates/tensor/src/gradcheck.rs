//! Numerical gradient checking.
//!
//! Each layer's analytic backward pass is verified against central finite
//! differences of a scalar probe loss `L = sum(r ⊙ forward(x))` with fixed
//! random coefficients `r`. This is how the test suite establishes that the
//! hand-written backward passes are correct before they are trusted by the
//! AppealNet joint-training loop.

use crate::layer::Layer;
use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// Relative/absolute tolerance comparison used by the gradient checker.
fn close(analytic: f32, numeric: f32, tol: f32) -> bool {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    (analytic - numeric).abs() / denom <= tol
}

/// Checks the gradients of `layer` at a random input of shape `input_shape`
/// (the first dimension is the batch size).
///
/// Verifies both the input gradient and a sample of each parameter's
/// gradient against central finite differences.
///
/// # Panics
///
/// Panics (failing the enclosing test) if any checked gradient deviates from
/// the numerical estimate by more than `tol` in relative terms.
pub fn check_layer_gradients(
    mut layer: Box<dyn Layer>,
    input_shape: &[usize],
    tol: f32,
    rng: &mut SeededRng,
) {
    // Keep inputs away from kinks (ReLU at 0, max-pool ties) so the numeric
    // derivative is well defined.
    let mut input = Tensor::randn(input_shape, rng);
    input.map_inplace(|x| {
        if x.abs() < 0.05 {
            if x >= 0.0 {
                x + 0.2
            } else {
                x - 0.2
            }
        } else {
            x
        }
    });

    let out = layer.forward(&input, true);
    let probe = Tensor::rand_uniform(out.shape(), 0.1, 1.0, rng);

    // Analytic gradients.
    for p in layer.params_mut() {
        p.zero_grad();
    }
    let out = layer.forward(&input, true);
    let analytic_input_grad = layer.backward(&probe);
    let _ = out;

    let eps = 1e-2f32;
    let loss_with = |layer: &mut Box<dyn Layer>, x: &Tensor, probe: &Tensor| -> f32 {
        layer.forward(x, true).mul(probe).sum()
    };

    // --- input gradient ---
    let n_input_checks = input.len().min(24);
    let stride = (input.len() / n_input_checks.max(1)).max(1);
    for idx in (0..input.len()).step_by(stride) {
        let orig = input.data()[idx];
        let mut plus = input.clone();
        plus.data_mut()[idx] = orig + eps;
        let mut minus = input.clone();
        minus.data_mut()[idx] = orig - eps;
        let numeric = (loss_with(&mut layer, &plus, &probe)
            - loss_with(&mut layer, &minus, &probe))
            / (2.0 * eps);
        let analytic = analytic_input_grad.data()[idx];
        assert!(
            close(analytic, numeric, tol),
            "input grad mismatch at {idx}: analytic={analytic} numeric={numeric}"
        );
    }

    // --- parameter gradients ---
    // Re-run forward/backward so cached activations correspond to `input`
    // (the finite-difference probes above overwrote them).
    for p in layer.params_mut() {
        p.zero_grad();
    }
    layer.forward(&input, true);
    layer.backward(&probe);
    let param_count = layer.params_mut().len();
    for pi in 0..param_count {
        let len = layer.params_mut()[pi].len();
        let n_checks = len.min(12);
        let stride = (len / n_checks.max(1)).max(1);
        for idx in (0..len).step_by(stride) {
            let analytic = layer.params_mut()[pi].grad.data()[idx];
            let orig = layer.params_mut()[pi].value.data()[idx];
            layer.params_mut()[pi].value.data_mut()[idx] = orig + eps;
            let plus = loss_with(&mut layer, &input, &probe);
            layer.params_mut()[pi].value.data_mut()[idx] = orig - eps;
            let minus = loss_with(&mut layer, &input, &probe);
            layer.params_mut()[pi].value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                close(analytic, numeric, tol),
                "param {pi} grad mismatch at {idx}: analytic={analytic} numeric={numeric}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Param;

    #[test]
    fn close_accepts_equal_and_rejects_far() {
        assert!(close(1.0, 1.0, 1e-3));
        assert!(close(100.0, 100.5, 1e-2));
        assert!(!close(1.0, 2.0, 1e-2));
    }

    /// A deliberately wrong layer: forward computes `2x`, backward claims the
    /// gradient is `3 * dy`. The checker must catch it.
    #[derive(Clone)]
    struct WrongLayer;

    impl Layer for WrongLayer {
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            input.scale(2.0)
        }
        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            grad_output.scale(3.0)
        }
        fn params_mut(&mut self) -> Vec<&mut Param> {
            Vec::new()
        }
        fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
            input_shape.to_vec()
        }
        fn flops(&self, _input_shape: &[usize]) -> u64 {
            0
        }
        fn name(&self) -> &'static str {
            "WrongLayer"
        }
    }

    #[test]
    #[should_panic(expected = "input grad mismatch")]
    fn detects_incorrect_backward() {
        let mut rng = SeededRng::new(0);
        check_layer_gradients(Box::new(WrongLayer), &[2, 3], 1e-2, &mut rng);
    }
}
