//! Q8_0 block quantization for the little-net inference tier.
//!
//! Weights are stored in ggml-style `Q8_0` blocks: [`QK8_0`] = 32 consecutive
//! `f32` values become 32 signed bytes plus one per-block `f32` scale. Unlike
//! ggml, the scale is constrained to a **power of two** — the smallest power
//! of two `d` such that `round(absmax / d) <= 127`. That costs at most one
//! bit of precision versus the classic `absmax / 127` scale, and buys exact
//! arithmetic everywhere it matters:
//!
//! * `x / d` is an exponent shift, so `q = round(x / d)` sees the true
//!   quotient — the per-element round-trip error is *exactly* bounded by
//!   `d / 2` (plus one subnormal of slack at the bottom of the exponent
//!   range, see [`q8_error_bound`]).
//! * `q * d` (dequantization) is exact, so quantize ∘ dequantize ∘ quantize
//!   is bitwise idempotent: re-quantizing a dequantized block reproduces the
//!   identical scale and bytes. With an `absmax / 127` scale this fails in
//!   f32 because `fl(fl(127 * d) / 127)` double-rounds.
//! * In the int8 GEMM ([`crate::kernels::quant_gemm`]) the per-block integer
//!   dot product (`<= 32 * 127 * 127 < 2^24`) converts to `f32` exactly and
//!   the power-of-two scale multiplies it exactly, leaving the cross-block
//!   f32 accumulation as the only rounding site — which is why the quantized
//!   path has a *single* numeric contract across every ISA and both build
//!   tiers (`quantized-tolerance`, see `docs/DETERMINISM.md`).
//!
//! Scales are clamped to at least `2^-126` (the smallest normal `f32`) so
//! the idempotence argument survives denormal inputs.

use crate::tensor::Tensor;

/// Number of elements per quantization block.
pub const QK8_0: usize = 32;

/// One Q8_0 block: 32 signed bytes and a power-of-two `f32` scale.
///
/// The represented values are `qs[i] as f32 * scale`. An all-zero source
/// block stores `scale == 0.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ8_0 {
    /// Power-of-two scale (or `0.0` for an all-zero block).
    pub scale: f32,
    /// Quantized values, each in `[-127, 127]`.
    pub qs: [i8; QK8_0],
}

impl BlockQ8_0 {
    /// The all-zero block.
    pub fn zero() -> Self {
        Self {
            scale: 0.0,
            qs: [0; QK8_0],
        }
    }
}

/// `2^k` for `k` in `[-126, 127]`, constructed exactly from the exponent bits.
fn exp2i(k: i32) -> f32 {
    debug_assert!((-126..=127).contains(&k));
    f32::from_bits(((k + 127) as u32) << 23)
}

/// The largest input magnitude the quantizer accepts: `127 · 2^120`
/// (≈ 1.69e38). Beyond this no power-of-two block scale can place the value
/// on the int8 grid without `q · scale` overflowing `f32` (at `f32::MAX`
/// the minimal scale is `2^122` and the rounded `q = 64` gives `2^128`).
/// The domain is *closed* under quantize∘dequantize: any absmax `<= 127 ·
/// 2^120` yields a minimal exponent `e <= 120`, so every reconstructed
/// value is itself `<= 127 · 2^120` — which is what keeps the idempotence
/// guarantee airtight. Network weights and activations sit thirty-plus
/// orders of magnitude below this; the bound exists so the adversarial
/// suites can state it, not because real models approach it.
pub const MAX_QUANT_INPUT: f32 = f32::from_bits((253 << 23) | (63 << 17));

/// `ceil(log2(x))` for finite positive `x`, via the bit pattern (no libm).
fn ilog2_ceil(x: f32) -> i32 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let mantissa = bits & 0x007F_FFFF;
    let biased = (bits >> 23) as i32;
    if biased == 0 {
        // Subnormal: x = mantissa * 2^-149.
        let top = 31 - mantissa.leading_zeros() as i32;
        let exact = mantissa == (1u32 << top);
        top - 149 + i32::from(!exact)
    } else {
        let e = biased - 127;
        if mantissa == 0 {
            e
        } else {
            e + 1
        }
    }
}

fn round_q(absmax: f32, e: i32) -> f32 {
    (absmax / exp2i(e)).round()
}

/// The block scale for a given absolute maximum: the smallest power of two
/// `d` with `round(absmax / d) <= 127`, clamped to the normal range
/// (`>= f32::MIN_POSITIVE`). Returns `0.0` for `absmax == 0.0`.
///
/// Minimality guarantees `round(absmax / d) >= 64` whenever the clamp is not
/// engaged, which is what makes re-quantization reproduce the same scale
/// (see the module docs).
pub fn q8_block_scale(absmax: f32) -> f32 {
    debug_assert!(absmax >= 0.0 && absmax.is_finite());
    if absmax == 0.0 {
        return 0.0;
    }
    // 2^e0 >= absmax / 128, so at most one upward correction is needed.
    let mut e = (ilog2_ceil(absmax) - 7).max(-126);
    while round_q(absmax, e) > 127.0 {
        e += 1;
    }
    while e > -126 && round_q(absmax, e - 1) <= 127.0 {
        e -= 1;
    }
    exp2i(e)
}

/// Quantizes up to [`QK8_0`] values into one block, zero-padding the tail.
///
/// # Panics
///
/// Panics (debug) on non-finite input or magnitudes beyond
/// [`MAX_QUANT_INPUT`]; `src.len()` must be `<= QK8_0`.
pub fn quantize_block(src: &[f32]) -> BlockQ8_0 {
    assert!(src.len() <= QK8_0, "block source longer than QK8_0");
    let mut absmax = 0.0f32;
    for &x in src {
        debug_assert!(
            x.is_finite() && x.abs() <= MAX_QUANT_INPUT,
            "quantize requires finite inputs within MAX_QUANT_INPUT, got {x:e}"
        );
        absmax = absmax.max(x.abs());
    }
    let scale = q8_block_scale(absmax);
    let mut qs = [0i8; QK8_0];
    if scale > 0.0 {
        // Exact: `scale` is a power of two in the normal range, so the
        // quotient is an exponent shift (subnormal quotients round to 0
        // with error < scale * 2^-126, far inside the d/2 bound).
        for (q, &x) in qs.iter_mut().zip(src) {
            let t = (x / scale).round();
            debug_assert!(t.abs() <= 127.0);
            *q = t as i8;
        }
    }
    BlockQ8_0 { scale, qs }
}

/// Quantizes a slice into Q8_0 blocks; the final block is zero-padded.
pub fn quantize_f32(src: &[f32]) -> Vec<BlockQ8_0> {
    src.chunks(QK8_0).map(quantize_block).collect()
}

/// Quantizes one activation row into `qs[..src.len()]` with a **single**
/// row-wide scale, returning that scale.
///
/// With `static_scale == None` the scale is the row's absmax snapped to a
/// power of two ([`q8_block_scale`]) — the on-the-fly path the quantized
/// GEMM uses by default. With a calibrated static scale, outliers beyond
/// the int8 grid are saturated to ±127 (the standard static-calibration
/// trade-off; the scale itself must be a [`q8_block_scale`] output).
///
/// `qs` may be longer than `src` (zero-padded GEMM rows); the tail is left
/// untouched.
pub fn quantize_row_into(src: &[f32], qs: &mut [i8], static_scale: Option<f32>) -> f32 {
    assert!(qs.len() >= src.len(), "quantized row buffer too short");
    let scale = match static_scale {
        Some(s) => {
            debug_assert!(s >= 0.0 && s.is_finite());
            s
        }
        None => {
            let mut absmax = 0.0f32;
            for &x in src {
                debug_assert!(
                    x.is_finite() && x.abs() <= MAX_QUANT_INPUT,
                    "quantize requires finite inputs within MAX_QUANT_INPUT, got {x:e}"
                );
                absmax = absmax.max(x.abs());
            }
            q8_block_scale(absmax)
        }
    };
    if scale <= 0.0 {
        qs[..src.len()].fill(0);
        return 0.0;
    }
    for (q, &x) in qs.iter_mut().zip(src) {
        *q = (x / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Dequantizes blocks into `out` (`out.len() <= blocks.len() * QK8_0`).
/// Every product `q * scale` is exact, so this is the unique f32 value set
/// the quantized representation denotes.
pub fn dequantize(blocks: &[BlockQ8_0], out: &mut [f32]) {
    assert!(
        out.len() <= blocks.len() * QK8_0,
        "dequantize output longer than quantized data"
    );
    for (i, o) in out.iter_mut().enumerate() {
        let b = &blocks[i / QK8_0];
        *o = f32::from(b.qs[i % QK8_0]) * b.scale;
    }
}

/// The per-element round-trip error bound for a block with the given scale:
/// `scale / 2` plus one smallest-normal of slack for the subnormal corner
/// (values whose exact quotient underflows quantize to 0 with error below
/// `scale * 2^-126`).
///
/// A zero bound is *not* valid for generic data — the tolerance-harness
/// teeth tests in [`crate::kernels::tolerance`] rely on that.
pub fn q8_error_bound(scale: f32) -> f64 {
    f64::from(scale) * 0.5 + f64::from(f32::MIN_POSITIVE)
}

/// A quantized tensor: Q8_0 blocks plus the logical element count.
///
/// This is the storage type for quantized parameters; it deliberately keeps
/// no shape information (the owning layer knows the shape, exactly as it
/// does for its f32 [`crate::Param`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    blocks: Vec<BlockQ8_0>,
    len: usize,
}

impl QuantTensor {
    /// Quantizes a slice.
    pub fn quantize(src: &[f32]) -> Self {
        Self {
            blocks: quantize_f32(src),
            len: src.len(),
        }
    }

    /// Logical (unpadded) element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying blocks.
    pub fn blocks(&self) -> &[BlockQ8_0] {
        &self.blocks
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        dequantize(&self.blocks, &mut out);
        out
    }

    /// Storage footprint in bytes (1 byte per element + 4 per block scale).
    pub fn bytes(&self) -> usize {
        self.blocks.len() * (QK8_0 + std::mem::size_of::<f32>())
    }

    /// The maximum `|x - dequant(quant(x))|` over `src`, and the largest
    /// per-block bound it must respect ([`q8_error_bound`] of the max scale).
    pub fn max_roundtrip_error(&self, src: &[f32]) -> (f64, f64) {
        assert_eq!(src.len(), self.len, "round-trip length mismatch");
        let deq = self.dequantize();
        let mut max_err = 0.0f64;
        for (x, y) in src.iter().zip(&deq) {
            max_err = max_err.max((f64::from(*x) - f64::from(*y)).abs());
        }
        let max_scale = self.blocks.iter().map(|b| b.scale).fold(0.0f32, f32::max);
        (max_err, q8_error_bound(max_scale))
    }
}

/// Quantized GEMM weights: the `B` operand of `out[m,n] = A[m,k] · B[k,n]`,
/// stored transposed so each output feature's reduction column is a
/// contiguous run of blocks.
///
/// Row `j` holds `ceil(k / 32)` blocks covering column `j` of `B` (length
/// `k`, zero-padded in the final block — padding contributes exactly 0 to
/// every dot product).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    blocks_per_row: usize,
    blocks: Vec<BlockQ8_0>,
}

impl QuantMatrix {
    /// Quantizes a matrix already laid out as `rows` reduction rows of
    /// length `cols` (e.g. conv weights `[out_c, in_c*k*k]`).
    pub fn from_rows(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "QuantMatrix shape mismatch");
        let blocks_per_row = cols.div_ceil(QK8_0).max(1);
        let mut blocks = Vec::with_capacity(rows * blocks_per_row);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            for c in (0..blocks_per_row * QK8_0).step_by(QK8_0) {
                let end = cols.min(c + QK8_0);
                blocks.push(if c < cols {
                    quantize_block(&row[c..end])
                } else {
                    BlockQ8_0::zero()
                });
            }
        }
        Self {
            rows,
            cols,
            blocks_per_row,
            blocks,
        }
    }

    /// Quantizes a row-major `[k, n]` matrix (a [`Tensor`]-layout GEMM `B`
    /// operand, e.g. a dense weight `[in, out]`) by gathering its columns.
    pub fn from_b(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "QuantMatrix shape mismatch");
        let mut col = vec![0.0f32; k];
        let mut gathered = Vec::with_capacity(k * n);
        for j in 0..n {
            for (p, c) in col.iter_mut().enumerate() {
                *c = b[p * n + j];
            }
            gathered.extend_from_slice(&col);
        }
        Self::from_rows(&gathered, n, k)
    }

    /// Quantizes a 2-D tensor `[k, n]` as the GEMM `B` operand.
    pub fn from_tensor_b(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 2, "QuantMatrix::from_tensor_b expects rank 2");
        Self::from_b(t.data(), t.shape()[0], t.shape()[1])
    }

    /// Number of reduction rows (the GEMM `n` dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reduction depth (the GEMM `k` dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Blocks per reduction row (`ceil(cols / 32)`, at least 1).
    pub fn blocks_per_row(&self) -> usize {
        self.blocks_per_row
    }

    /// The blocks of reduction row `j`.
    pub fn row(&self, j: usize) -> &[BlockQ8_0] {
        &self.blocks[j * self.blocks_per_row..(j + 1) * self.blocks_per_row]
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.blocks.len() * (QK8_0 + std::mem::size_of::<f32>())
    }

    /// The largest block scale in the matrix (`0.0` for an all-zero matrix).
    pub fn max_scale(&self) -> f32 {
        self.blocks.iter().map(|b| b.scale).fold(0.0f32, f32::max)
    }

    /// Maximum per-element round-trip error and its contract bound against
    /// the row-major `rows x cols` source this matrix was quantized from
    /// (the [`QuantMatrix::from_rows`] layout).
    pub fn max_roundtrip_error_rows(&self, data: &[f32]) -> (f64, f64) {
        assert_eq!(data.len(), self.rows * self.cols, "report shape mismatch");
        let mut max_err = 0.0f64;
        let mut bound = f64::from(f32::MIN_POSITIVE);
        for r in 0..self.rows {
            let row = &data[r * self.cols..(r + 1) * self.cols];
            for (b, block) in self.row(r).iter().enumerate() {
                let start = b * QK8_0;
                if start >= self.cols {
                    break;
                }
                bound = bound.max(q8_error_bound(block.scale));
                let end = self.cols.min(start + QK8_0);
                for (t, &x) in row[start..end].iter().enumerate() {
                    let y = f64::from(block.qs[t]) * f64::from(block.scale);
                    max_err = max_err.max((f64::from(x) - y).abs());
                }
            }
        }
        (max_err, bound)
    }

    /// Builds the per-layer quantization report for this matrix against its
    /// row-major [`QuantMatrix::from_rows`] source.
    pub fn report_against_rows(&self, layer: &'static str, data: &[f32]) -> QuantLayerReport {
        let (max_error, error_bound) = self.max_roundtrip_error_rows(data);
        QuantLayerReport {
            layer,
            params: data.len(),
            max_error,
            error_bound,
            quant_bytes: self.bytes(),
            f32_bytes: std::mem::size_of_val(data),
        }
    }
}

/// Per-layer result of a [`crate::Layer::quantize_weights`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayerReport {
    /// Layer name (as reported by [`crate::Layer::name`]).
    pub layer: &'static str,
    /// Number of scalars quantized.
    pub params: usize,
    /// Maximum per-element round-trip error over the layer's weights.
    pub max_error: f64,
    /// The quantized-tolerance bound those errors must respect.
    pub error_bound: f64,
    /// Quantized storage bytes.
    pub quant_bytes: usize,
    /// Original f32 storage bytes.
    pub f32_bytes: usize,
}

impl QuantLayerReport {
    /// Whether the layer's round-trip error respects the contract bound.
    pub fn within_bound(&self) -> bool {
        self.max_error <= self.error_bound
    }
}

/// Aggregate view over the per-layer reports of a quantized model.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantReportSummary {
    /// Number of quantized layers.
    pub layers: usize,
    /// Total scalars quantized.
    pub params: usize,
    /// Worst per-element round-trip error across layers.
    pub max_error: f64,
    /// Largest per-layer bound (the contract the worst error is held to).
    pub error_bound: f64,
    /// Total quantized bytes.
    pub quant_bytes: usize,
    /// Total f32 bytes.
    pub f32_bytes: usize,
}

impl QuantReportSummary {
    /// Summarizes a set of per-layer reports.
    pub fn from_reports(reports: &[QuantLayerReport]) -> Self {
        Self {
            layers: reports.len(),
            params: reports.iter().map(|r| r.params).sum(),
            max_error: reports.iter().map(|r| r.max_error).fold(0.0, f64::max),
            error_bound: reports.iter().map(|r| r.error_bound).fold(0.0, f64::max),
            quant_bytes: reports.iter().map(|r| r.quant_bytes).sum(),
            f32_bytes: reports.iter().map(|r| r.f32_bytes).sum(),
        }
    }

    /// Whether every layer respected its round-trip bound.
    pub fn within_bound(&self) -> bool {
        self.max_error <= self.error_bound
    }

    /// f32 bytes divided by quantized bytes (≈ 3.6x for Q8_0).
    pub fn compression(&self) -> f64 {
        if self.quant_bytes == 0 {
            1.0
        } else {
            self.f32_bytes as f64 / self.quant_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn assert_block_bound(src: &[f32]) {
        let blocks = quantize_f32(src);
        let mut deq = vec![0.0f32; src.len()];
        dequantize(&blocks, &mut deq);
        for (i, (&x, &y)) in src.iter().zip(&deq).enumerate() {
            let scale = blocks[i / QK8_0].scale;
            let err = (f64::from(x) - f64::from(y)).abs();
            assert!(
                err <= q8_error_bound(scale),
                "elem {i}: x={x:e} deq={y:e} err={err:e} scale={scale:e}"
            );
        }
    }

    fn assert_idempotent(src: &[f32]) {
        let once = quantize_f32(src);
        let mut deq = vec![0.0f32; src.len()];
        dequantize(&once, &mut deq);
        let twice = quantize_f32(&deq);
        assert_eq!(once.len(), twice.len());
        for (a, b) in once.iter().zip(&twice) {
            assert_eq!(
                a.scale.to_bits(),
                b.scale.to_bits(),
                "requantized scale changed: {:e} -> {:e}",
                a.scale,
                b.scale
            );
            assert_eq!(a.qs, b.qs, "requantized bytes changed");
        }
    }

    #[test]
    fn scale_is_power_of_two_and_minimal() {
        let mut rng = SeededRng::new(11);
        for _ in 0..2000 {
            // Log-uniform absmax across the full finite range.
            let e = rng.below(250) as i32 - 140;
            let m = rng.uniform(1.0, 2.0);
            let absmax = (f64::from(m) * 2.0f64.powi(e)) as f32;
            if absmax == 0.0 || !absmax.is_finite() {
                continue;
            }
            let d = q8_block_scale(absmax);
            assert!(d >= f32::MIN_POSITIVE);
            // Power of two: single mantissa bit.
            assert_eq!(d.to_bits() & 0x007F_FFFF, 0, "scale not a power of two");
            let q = (absmax / d).round();
            assert!(q <= 127.0, "q={q} for absmax={absmax:e} d={d:e}");
            // Minimal (unless clamped to the smallest normal).
            if d > f32::MIN_POSITIVE {
                assert!((absmax / (d / 2.0)).round() > 127.0, "scale not minimal");
            }
        }
    }

    #[test]
    fn roundtrip_bound_random_blocks() {
        let mut rng = SeededRng::new(2021);
        for _ in 0..200 {
            let n = 1 + rng.below(100);
            let scale = 2.0f32.powi(rng.below(60) as i32 - 30);
            let src: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0) * scale).collect();
            assert_block_bound(&src);
            assert_idempotent(&src);
        }
    }

    #[test]
    fn roundtrip_bound_denormals() {
        let mut rng = SeededRng::new(7);
        let src: Vec<f32> = (0..QK8_0 * 3)
            .map(|_| {
                // Subnormal magnitudes: mantissa-only bit patterns, mixed sign.
                let m = (rng.next_u64() % (1 << 23)) as u32;
                let v = f32::from_bits(m);
                debug_assert!(v == 0.0 || v.is_subnormal());
                if rng.next_u64().is_multiple_of(2) {
                    v
                } else {
                    -v
                }
            })
            .collect();
        assert_block_bound(&src);
        assert_idempotent(&src);
    }

    #[test]
    fn roundtrip_bound_signed_zeros_and_ties() {
        // ±0 must quantize to 0 with zero error; repeated absmax ties and
        // exact-half quotients exercise the rounding edge.
        let mut src = vec![0.0f32, -0.0, 1.0, -1.0, 1.0, -1.0];
        // Values exactly halfway between quantization points.
        let d = q8_block_scale(1.0);
        src.push(1.5 * d);
        src.push(-2.5 * d);
        src.resize(QK8_0, 1.0);
        assert_block_bound(&src);
        assert_idempotent(&src);
        let b = quantize_block(&src);
        assert_eq!(b.qs[0], 0);
        assert_eq!(b.qs[1], 0);
        assert_eq!(b.qs[2], -b.qs[3]);
    }

    #[test]
    fn constant_blocks_quantize_exactly() {
        for v in [0.0f32, 1.0, -3.5, 1e-30, 6.25e4] {
            let src = [v; QK8_0];
            let blocks = quantize_f32(&src);
            let mut deq = [0.0f32; QK8_0];
            dequantize(&blocks, &mut deq);
            // A constant power-of-two-friendly block may not round-trip
            // exactly, but must respect the bound and be idempotent.
            assert_block_bound(&src);
            assert_idempotent(&src);
            // All elements map to the same byte.
            assert!(blocks[0].qs.iter().all(|&q| q == blocks[0].qs[0]));
        }
    }

    #[test]
    fn all_zero_block_has_zero_scale() {
        let b = quantize_block(&[0.0; QK8_0]);
        assert_eq!(b.scale, 0.0);
        assert_eq!(b.qs, [0; QK8_0]);
        let mut out = [1.0f32; QK8_0];
        dequantize(&[b], &mut out);
        assert_eq!(out, [0.0; QK8_0]);
    }

    #[test]
    fn domain_boundary_roundtrips_exactly() {
        // The documented domain edge: absmax = 127 * 2^120 takes scale
        // 2^120 with q = 127 and reconstructs exactly — the domain is
        // closed, so idempotence holds right at the edge.
        let src = [MAX_QUANT_INPUT; QK8_0];
        let b = quantize_block(&src);
        assert_eq!(b.scale, 2.0f32.powi(120));
        assert!(b.qs.iter().all(|&q| q == 127));
        assert_block_bound(&src);
        assert_idempotent(&src);
    }

    #[test]
    fn idempotence_adversarial_sweep() {
        // The PR's exact-idempotence satellite: seeded adversarial
        // distributions, including near-boundary absmax values where an
        // absmax/127 scale double-rounds.
        let mut rng = SeededRng::new(4242);
        for round in 0..500 {
            let n = QK8_0 * (1 + round % 3);
            let src: Vec<f32> = (0..n)
                .map(|_| {
                    let raw = (rng.next_u64() & 0x7FFF_FFFF) as u32;
                    let mut v = f32::from_bits(raw);
                    if !v.is_finite() {
                        // Demote NaN/inf patterns to subnormals, keeping the
                        // mantissa bits adversarial.
                        v = f32::from_bits(raw & 0x007F_FFFF);
                    }
                    if v > MAX_QUANT_INPUT {
                        // Exact power-of-two downscale into the supported
                        // domain (mantissa preserved, no rounding).
                        v *= 0.00390625; // 2^-8
                    }
                    if rng.next_u64().is_multiple_of(2) {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            assert_block_bound(&src);
            assert_idempotent(&src);
        }
    }

    #[test]
    fn quant_tensor_roundtrip_and_footprint() {
        let mut rng = SeededRng::new(5);
        let src: Vec<f32> = (0..1000).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let qt = QuantTensor::quantize(&src);
        assert_eq!(qt.len(), 1000);
        assert!(!qt.is_empty());
        let (err, bound) = qt.max_roundtrip_error(&src);
        assert!(err <= bound, "err {err:e} > bound {bound:e}");
        assert!(err > 0.0, "random data should not round-trip exactly");
        // 32 floats (128 B) become 36 B: ~3.6x smaller.
        assert!(qt.bytes() * 3 < src.len() * 4);
        assert_eq!(qt.dequantize().len(), 1000);
    }

    #[test]
    fn quant_matrix_layouts_agree() {
        let mut rng = SeededRng::new(6);
        let (k, n) = (70, 9);
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let qm = QuantMatrix::from_b(&b, k, n);
        assert_eq!(qm.rows(), n);
        assert_eq!(qm.cols(), k);
        assert_eq!(qm.blocks_per_row(), k.div_ceil(QK8_0));
        // Row j must be the quantization of column j of B.
        for j in 0..n {
            let col: Vec<f32> = (0..k).map(|p| b[p * n + j]).collect();
            let expect = quantize_f32(&col);
            let row = qm.row(j);
            for (bi, eb) in expect.iter().enumerate() {
                assert_eq!(row[bi], *eb);
            }
            // Padding blocks (if any) are exactly zero.
            for pad_block in &row[expect.len()..qm.blocks_per_row()] {
                assert_eq!(*pad_block, BlockQ8_0::zero());
            }
        }
        assert!(qm.max_scale() > 0.0);
        assert!(qm.bytes() > 0);
    }

    #[test]
    fn report_summary_aggregates() {
        let reports = vec![
            QuantLayerReport {
                layer: "Dense",
                params: 10,
                max_error: 1e-3,
                error_bound: 2e-3,
                quant_bytes: 36,
                f32_bytes: 128,
            },
            QuantLayerReport {
                layer: "Conv2d",
                params: 20,
                max_error: 5e-4,
                error_bound: 1e-3,
                quant_bytes: 72,
                f32_bytes: 256,
            },
        ];
        assert!(reports.iter().all(|r| r.within_bound()));
        let s = QuantReportSummary::from_reports(&reports);
        assert_eq!(s.layers, 2);
        assert_eq!(s.params, 30);
        assert!((s.max_error - 1e-3).abs() < 1e-12);
        assert!(s.within_bound());
        assert!(s.compression() > 3.0);
    }
}
