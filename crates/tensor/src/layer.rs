//! The [`Layer`] abstraction and trainable [`Param`]eters.
//!
//! Rather than a tape-based autograd engine, this library uses explicit
//! layer-local backward passes (the classic "caffe-style" design): each layer
//! caches whatever it needs during `forward` and produces the gradient with
//! respect to its input during `backward`, accumulating gradients of its own
//! parameters along the way. This is simpler, easy to verify with numerical
//! gradient checks (see [`crate::gradcheck`]) and entirely sufficient for the
//! feed-forward architectures used by AppealNet.

use crate::tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
    /// Human-readable name, used in debugging output.
    pub name: String,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of the same shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            name: name.into(),
        }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar values in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with explicit forward and backward passes.
///
/// Layers are stateful: `forward` caches activations needed by `backward`,
/// and `backward` must be called with the gradient of the loss with respect
/// to the most recent `forward` output.
///
/// Layers are `Send + Sync` (they hold plain data, no interior mutability)
/// and cloneable via [`Layer::clone_box`], which is what lets the parallel
/// batch-evaluation engine replicate a trained model across worker threads.
pub trait Layer: Send + Sync {
    /// Runs the layer on a batch.
    ///
    /// `train` toggles training-time behaviour (dropout masks, batch-norm
    /// batch statistics vs. running statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output` (gradient w.r.t. the last forward output)
    /// and returns the gradient w.r.t. the last forward input. Parameter
    /// gradients are accumulated into the layer's [`Param`]s.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to this layer's parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shape produced by `forward` for a given input shape (excluding the batch dimension).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Number of multiply-accumulate-equivalent floating point operations for
    /// one input sample of the given (batch-less) shape.
    fn flops(&self, input_shape: &[usize]) -> u64;

    /// Short layer name used in summaries.
    fn name(&self) -> &'static str;

    /// Total number of trainable scalars in this layer.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Clones this layer (parameters, running statistics and caches) into a
    /// fresh box. Used to replicate models across evaluation worker threads.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Drops activations cached by `forward` for `backward`. Long-lived
    /// evaluation replicas call this after cloning so they do not retain
    /// copies of the source model's cached training activations.
    fn clear_cache(&mut self) {}

    /// Switches this layer's inference path to the quantized (Q8_0) weight
    /// tier, returning one [`crate::quant::QuantLayerReport`] per quantized
    /// parameter tensor. Layers without a quantized path (the default)
    /// return an empty vector and keep computing in f32; containers
    /// aggregate their children's reports. Quantization affects **eval**
    /// forwards only — training always runs the f32 path.
    fn quantize_weights(&mut self) -> Vec<crate::quant::QuantLayerReport> {
        Vec::new()
    }

    /// Whether this layer (or, for containers, any child) currently serves
    /// eval forwards from quantized weights.
    fn is_quantized(&self) -> bool {
        false
    }

    /// Starts activation-scale calibration: during subsequent eval forwards
    /// a quantized layer observes the absolute maximum of its inputs
    /// instead of committing to a static scale. No-op for f32 layers.
    fn begin_calibration(&mut self) {}

    /// Freezes the observed activation statistics into static power-of-two
    /// input scales (see `crate::quant::q8_block_scale`) and leaves
    /// calibration mode. No-op for f32 layers or if nothing was observed.
    fn end_calibration(&mut self) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new("b", Tensor::ones(&[3]));
        p.grad = Tensor::full(&[3], 5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
