//! Seeded random number generation.
//!
//! Every stochastic component in the reproduction (weight initialization,
//! dataset synthesis, dropout, batch shuffling) draws from a [`SeededRng`] so
//! that experiments are bit-for-bit reproducible given a seed.
//!
//! The generator is a self-contained ChaCha8 stream cipher RNG (no external
//! dependencies — this build environment is offline): fast, portable, and
//! with a well-defined output for a given seed on every platform.

/// The ChaCha state constants: `"expand 32-byte k"`.
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha8 block generator: 16 words of key stream per block.
#[derive(Debug, Clone)]
struct ChaCha8 {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); words 14..15 hold the nonce (zero).
    counter: u64,
    /// Buffered key-stream words from the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "refill needed".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    fn new(key: [u32; 8]) -> Self {
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }

    /// Runs the ChaCha8 block function, refilling the output buffer.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: zero nonce.
        let initial = state;
        // ChaCha8 = 8 rounds = 4 double rounds.
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Expands a 64-bit seed into ChaCha key words with a splitmix64 stream
/// (one call per 8 key bytes). This is analogous to — but NOT bit-compatible
/// with — `rand`'s `seed_from_u64`, which draws one splitmix64 output per
/// 4-byte chunk; streams differ from the pre-rewrite rand-based generator
/// for the same seed.
fn expand_seed(seed: u64) -> [u32; 8] {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut key = [0u32; 8];
    for pair in key.chunks_mut(2) {
        let v = next();
        pair[0] = v as u32;
        pair[1] = (v >> 32) as u32;
    }
    key
}

/// A deterministic random number generator with convenience samplers.
///
/// Wraps a ChaCha8 stream cipher RNG, which is fast, portable and has a
/// well-defined output for a given seed on every platform.
///
/// # Example
///
/// ```
/// use appeal_tensor::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: ChaCha8,
}

impl SeededRng {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8::new(expand_seed(seed)),
        }
    }

    /// Splits off an independent generator derived from this one.
    ///
    /// Useful for giving each component (dataset, model init, trainer) its
    /// own stream so that changing one does not perturb the others.
    pub fn split(&mut self) -> Self {
        Self::new(self.inner.next_u64())
    }

    /// The next raw 64-bit word of the key stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f32` in `[0, 1)` using the top 24 bits of one output word.
    fn next_f32(&mut self) -> f32 {
        (self.inner.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Samples from a normal distribution with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box-Muller transform; avoids depending on a distributions crate.
        loop {
            let u1: f32 = self.uniform(f32::EPSILON, 1.0);
            let u2: f32 = self.next_f32();
            let mag = (-2.0 * u1.ln()).sqrt();
            let z = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let v = mean + std * z;
            if v.is_finite() {
                return v;
            }
        }
    }

    /// Samples from a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        assert!(low < high, "uniform range must satisfy low < high");
        let v = low + self.next_f32() * (high - low);
        // Guard the half-open contract against rounding at the top end:
        // clamp to the largest value below `high` rather than wrapping to
        // `low`, which would put a point mass at the bottom of narrow ranges.
        if v >= high {
            high.next_down().max(low)
        } else {
            v
        }
    }

    /// Samples an integer uniformly from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(n) requires n > 0");
        // 64-bit multiply-shift (Lemire); bias is negligible for the small
        // ranges used here and the output is deterministic either way.
        let x = self.inner.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Produces a random permutation of `0..n` (Fisher-Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i + 1);
            idx.swap(i, j);
        }
        idx
    }
}

impl Default for SeededRng {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha_kat_first_block_differs_from_second() {
        // The block counter must advance: two consecutive blocks of key
        // stream cannot be identical.
        let mut rng = SeededRng::new(0);
        let block1: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let block2: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_ne!(block1, block2);
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = SeededRng::new(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = SeededRng::new(21);
        for _ in 0..10_000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = SeededRng::new(5);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(11);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut rng = SeededRng::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_probability_roughly_respected() {
        let mut rng = SeededRng::new(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SeededRng::new(77);
        let mut b = SeededRng::new(77);
        let mut a1 = a.split();
        let mut b1 = b.split();
        assert_eq!(a1.uniform(0.0, 1.0), b1.uniform(0.0, 1.0));
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}
