//! Seeded random number generation.
//!
//! Every stochastic component in the reproduction (weight initialization,
//! dataset synthesis, dropout, batch shuffling) draws from a [`SeededRng`] so
//! that experiments are bit-for-bit reproducible given a seed.

use rand::distributions::Distribution;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random number generator with convenience samplers.
///
/// Wraps a ChaCha8 stream cipher RNG, which is fast, portable and has a
/// well-defined output for a given seed on every platform.
///
/// # Example
///
/// ```
/// use appeal_tensor::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: ChaCha8Rng,
}

impl SeededRng {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent generator derived from this one.
    ///
    /// Useful for giving each component (dataset, model init, trainer) its
    /// own stream so that changing one does not perturb the others.
    pub fn split(&mut self) -> Self {
        Self::new(self.inner.next_u64())
    }

    /// Samples from a normal distribution with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box-Muller transform; avoids depending on rand_distr.
        loop {
            let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.inner.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let z = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let v = mean + std * z;
            if v.is_finite() {
                return v;
            }
        }
    }

    /// Samples from a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        assert!(low < high, "uniform range must satisfy low < high");
        self.inner.gen_range(low..high)
    }

    /// Samples an integer uniformly from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(n) requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// Produces a random permutation of `0..n` (Fisher-Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }

    /// Samples from an arbitrary `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.inner)
    }

    /// Returns a mutable reference to the underlying `rand` RNG.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

impl Default for SeededRng {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = SeededRng::new(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = SeededRng::new(5);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(11);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn bernoulli_probability_roughly_respected() {
        let mut rng = SeededRng::new(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SeededRng::new(77);
        let mut b = SeededRng::new(77);
        let mut a1 = a.split();
        let mut b1 = b.split();
        assert_eq!(a1.uniform(0.0, 1.0), b1.uniform(0.0, 1.0));
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}
