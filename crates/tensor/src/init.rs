//! Weight initializers.
//!
//! All initializers draw from a [`SeededRng`] so that model construction is
//! reproducible.

use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// Weight initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Zero initialization (typically used for biases).
    Zeros,
    /// Constant initialization.
    Constant(f32),
    /// Kaiming / He normal initialization: `N(0, sqrt(2 / fan_in))`.
    ///
    /// The default for layers followed by ReLU.
    KaimingNormal,
    /// Xavier / Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Plain normal with a fixed standard deviation.
    Normal(f32),
}

impl Init {
    /// Materializes a tensor of the given shape.
    ///
    /// `fan_in` / `fan_out` are the effective fan values of the layer the
    /// weights belong to (for convolutions they include the receptive-field
    /// size).
    pub fn build(
        self,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut SeededRng,
    ) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::Constant(c) => Tensor::full(shape, c),
            Init::KaimingNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Tensor::randn(shape, rng).scale(std)
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -a, a, rng)
            }
            Init::Normal(std) => Tensor::randn(shape, rng).scale(std),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let mut rng = SeededRng::new(0);
        assert_eq!(Init::Zeros.build(&[3, 3], 3, 3, &mut rng).sum(), 0.0);
        assert_eq!(
            Init::Constant(2.0).build(&[2, 2], 2, 2, &mut rng).sum(),
            8.0
        );
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = SeededRng::new(1);
        let wide = Init::KaimingNormal.build(&[1000, 100], 100, 1000, &mut rng);
        let narrow = Init::KaimingNormal.build(&[1000, 100], 4, 1000, &mut rng);
        let std_wide = (wide.norm_sq() / wide.len() as f32).sqrt();
        let std_narrow = (narrow.norm_sq() / narrow.len() as f32).sqrt();
        assert!(std_narrow > std_wide * 2.0);
        assert!((std_wide - (2.0f32 / 100.0).sqrt()).abs() < 0.02);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SeededRng::new(2);
        let w = Init::XavierUniform.build(&[64, 64], 64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn normal_std_respected() {
        let mut rng = SeededRng::new(3);
        let w = Init::Normal(0.01).build(&[1000, 10], 10, 1000, &mut rng);
        let std = (w.norm_sq() / w.len() as f32).sqrt();
        assert!((std - 0.01).abs() < 0.002);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        let wa = Init::KaimingNormal.build(&[4, 4], 4, 4, &mut a);
        let wb = Init::KaimingNormal.build(&[4, 4], 4, 4, &mut b);
        assert_eq!(wa, wb);
    }
}
