//! Optimizers and learning-rate schedules.

use crate::layer::Param;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Gradient clipping configuration (global L2 norm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradClip {
    /// Maximum allowed global gradient norm.
    pub max_norm: f32,
}

impl GradClip {
    /// Creates a gradient-clipping configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn new(max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        Self { max_norm }
    }

    /// Scales the gradients in place so the global L2 norm is at most `max_norm`.
    /// Returns the scaling factor applied (1.0 if no clipping happened).
    pub fn apply(&self, params: &mut [&mut Param]) -> f32 {
        let total: f32 = params.iter().map(|p| p.grad.norm_sq()).sum();
        let norm = total.sqrt();
        if norm <= self.max_norm || norm == 0.0 {
            return 1.0;
        }
        let scale = self.max_norm / norm;
        for p in params.iter_mut() {
            let scaled = p.grad.scale(scale);
            p.grad = scaled;
        }
        scale
    }
}

/// Learning-rate schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply the learning rate by `gamma` every `every` epochs.
    StepDecay {
        /// Number of epochs between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base learning rate to `min_lr` over `total_epochs`.
    Cosine {
        /// Total number of epochs of the schedule.
        total_epochs: usize,
        /// Final learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) given a base learning rate.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, gamma } => {
                base_lr * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                let t = (epoch as f32 / total_epochs.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Common optimizer interface: consumes accumulated gradients and updates parameters.
pub trait Optimizer {
    /// Applies one update step to the given parameters and zeroes their gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Sets the current learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// Returns the current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent, optionally with momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum and L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum` is not in `[0, 1)`, or `weight_decay < 0`.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.weight_decay > 0.0 {
                grad.add_scaled_inplace(&p.value, self.weight_decay);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                // v = momentum * v + grad ; w -= lr * v
                let mut new_v = v.scale(self.momentum);
                new_v.add_scaled_inplace(&grad, 1.0);
                *v = new_v;
                p.value.add_scaled_inplace(v, -self.lr);
            } else {
                p.value.add_scaled_inplace(&grad, -self.lr);
            }
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or the betas are outside `[0, 1)`.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.weight_decay > 0.0 {
                grad.add_scaled_inplace(&p.value, self.weight_decay);
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..grad.len() {
                let g = grad.data()[j];
                let mj = self.beta1 * m.data()[j] + (1.0 - self.beta1) * g;
                let vj = self.beta2 * v.data()[j] + (1.0 - self.beta2) * g * g;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let m_hat = mj / bc1;
                let v_hat = vj / bc2;
                p.value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new("x", Tensor::from_vec(vec![x0], &[1]).unwrap())
    }

    /// Minimize f(x) = (x - 3)^2 with each optimizer; all should converge.
    fn run_optimizer(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quadratic_param(10.0);
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();
            opt.step(&mut [&mut p]);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_optimizer(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let x = run_optimizer(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = run_optimizer(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param(1.0);
        p.grad = Tensor::ones(&[1]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new("w", Tensor::full(&[4], 10.0));
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        // Zero task gradient: only decay drives the update.
        for _ in 0..10 {
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0] < 10.0);
    }

    #[test]
    fn grad_clip_limits_norm() {
        let mut p = Param::new("w", Tensor::zeros(&[3]));
        p.grad = Tensor::from_vec(vec![3.0, 4.0, 0.0], &[3]).unwrap(); // norm 5
        let clip = GradClip::new(1.0);
        let scale = clip.apply(&mut [&mut p]);
        assert!((scale - 0.2).abs() < 1e-6);
        assert!((p.grad.norm_sq().sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn grad_clip_noop_when_small() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        p.grad = Tensor::from_vec(vec![0.1, 0.1], &[2]).unwrap();
        let clip = GradClip::new(10.0);
        assert_eq!(clip.apply(&mut [&mut p]), 1.0);
    }

    #[test]
    fn lr_schedules() {
        assert_eq!(LrSchedule::Constant.lr_at(0.1, 50), 0.1);
        let step = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert!((step.lr_at(0.1, 0) - 0.1).abs() < 1e-7);
        assert!((step.lr_at(0.1, 10) - 0.05).abs() < 1e-7);
        assert!((step.lr_at(0.1, 25) - 0.025).abs() < 1e-7);
        let cos = LrSchedule::Cosine {
            total_epochs: 100,
            min_lr: 0.0,
        };
        assert!((cos.lr_at(0.1, 0) - 0.1).abs() < 1e-6);
        assert!(cos.lr_at(0.1, 100) < 1e-6);
        assert!(cos.lr_at(0.1, 50) < 0.1 && cos.lr_at(0.1, 50) > 0.0);
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Adam::new(0.01);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }
}
