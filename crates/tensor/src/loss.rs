//! Loss functions.
//!
//! The AppealNet joint objective (paper Eq. 9 / Eq. 10) needs *per-sample*
//! cross-entropy values and the ability to weight each sample's gradient by
//! its predictor output `q(1|x)`, so both losses here expose per-sample
//! results in addition to the batch mean.

use crate::layers::Sigmoid;
use crate::tensor::Tensor;

/// Numerically stable log-softmax of one row of logits.
fn log_softmax_row(row: &[f32]) -> Vec<f32> {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    row.iter().map(|&x| x - max - log_sum).collect()
}

/// Softmax cross-entropy between logits `[n, k]` and integer class labels.
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// # fn main() -> Result<(), appeal_tensor::TensorError> {
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], &[2, 3])?;
/// let loss = SoftmaxCrossEntropy::new();
/// let per_sample = loss.per_sample(&logits, &[0, 1]);
/// assert!(per_sample[0] < 1.0 && per_sample[1] < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Softmax probabilities for each row of `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not rank 2.
    pub fn probabilities(&self, logits: &Tensor) -> Tensor {
        assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        let mut out = Tensor::zeros(&[n, k]);
        for i in 0..n {
            let ls = log_softmax_row(logits.row(i).data());
            for (j, l) in ls.iter().enumerate() {
                out.data_mut()[i * k + j] = l.exp();
            }
        }
        out
    }

    /// Per-sample cross-entropy losses.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or a label is out of range.
    pub fn per_sample(&self, logits: &Tensor, labels: &[usize]) -> Vec<f32> {
        assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(labels.len(), n, "label count must match batch size");
        (0..n)
            .map(|i| {
                let y = labels[i];
                assert!(y < k, "label {y} out of range for {k} classes");
                -log_softmax_row(logits.row(i).data())[y]
            })
            .collect()
    }

    /// Mean cross-entropy over the batch.
    pub fn mean(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let per = self.per_sample(logits, labels);
        per.iter().sum::<f32>() / per.len().max(1) as f32
    }

    /// Gradient of `sum_i w_i * CE_i / n` with respect to the logits, where
    /// `w_i` is a per-sample weight (all ones recovers the ordinary mean CE
    /// gradient).
    ///
    /// # Panics
    ///
    /// Panics if the weight or label counts do not match the batch size.
    pub fn grad_weighted(&self, logits: &Tensor, labels: &[usize], weights: &[f32]) -> Tensor {
        assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(labels.len(), n, "label count must match batch size");
        assert_eq!(weights.len(), n, "weight count must match batch size");
        let probs = self.probabilities(logits);
        let mut grad = Tensor::zeros(&[n, k]);
        let scale = 1.0 / n as f32;
        for i in 0..n {
            let w = weights[i] * scale;
            for j in 0..k {
                let indicator = if j == labels[i] { 1.0 } else { 0.0 };
                grad.data_mut()[i * k + j] = w * (probs.data()[i * k + j] - indicator);
            }
        }
        grad
    }

    /// Gradient of the ordinary mean cross-entropy.
    pub fn grad(&self, logits: &Tensor, labels: &[usize]) -> Tensor {
        self.grad_weighted(logits, labels, &vec![1.0; labels.len()])
    }
}

/// Binary cross-entropy on raw scores passed through a sigmoid.
///
/// Used for auxiliary binary targets (for instance training a post-hoc
/// "difficulty" classifier baseline in the ablations).
#[derive(Debug, Default, Clone, Copy)]
pub struct BinaryCrossEntropy;

impl BinaryCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Per-sample BCE given raw (pre-sigmoid) scores `[n, 1]` or `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if the number of scores and targets differ.
    pub fn per_sample(&self, scores: &Tensor, targets: &[f32]) -> Vec<f32> {
        assert_eq!(scores.len(), targets.len(), "score/target count mismatch");
        scores
            .data()
            .iter()
            .zip(targets.iter())
            .map(|(&s, &t)| {
                let p = Sigmoid::apply(s).clamp(1e-7, 1.0 - 1e-7);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .collect()
    }

    /// Mean BCE over the batch.
    pub fn mean(&self, scores: &Tensor, targets: &[f32]) -> f32 {
        let per = self.per_sample(scores, targets);
        per.iter().sum::<f32>() / per.len().max(1) as f32
    }

    /// Gradient of the mean BCE with respect to the raw scores.
    pub fn grad(&self, scores: &Tensor, targets: &[f32]) -> Tensor {
        assert_eq!(scores.len(), targets.len(), "score/target count mismatch");
        let n = targets.len().max(1) as f32;
        let data = scores
            .data()
            .iter()
            .zip(targets.iter())
            .map(|(&s, &t)| (Sigmoid::apply(s) - t) / n)
            .collect();
        Tensor::from_vec(data, scores.shape()).expect("shape preserved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = SeededRng::new(0);
        let logits = Tensor::randn(&[5, 7], &mut rng).scale(3.0);
        let probs = SoftmaxCrossEntropy::new().probabilities(&logits);
        for i in 0..5 {
            let s: f32 = probs.row(i).data().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]).unwrap();
        let loss = SoftmaxCrossEntropy::new().mean(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let loss = SoftmaxCrossEntropy::new().mean(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let loss = SoftmaxCrossEntropy::new().mean(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(loss < 1e-3);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut rng = SeededRng::new(1);
        let mut logits = Tensor::randn(&[3, 4], &mut rng);
        let labels = vec![0, 2, 3];
        let ce = SoftmaxCrossEntropy::new();
        let grad = ce.grad(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let plus = ce.mean(&logits, &labels);
            logits.data_mut()[idx] = orig - eps;
            let minus = ce.mean(&logits, &labels);
            logits.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (grad.data()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: analytic {} numeric {numeric}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn weighted_grad_scales_per_sample() {
        let mut rng = SeededRng::new(2);
        let logits = Tensor::randn(&[2, 3], &mut rng);
        let labels = vec![1, 2];
        let ce = SoftmaxCrossEntropy::new();
        let g_full = ce.grad_weighted(&logits, &labels, &[1.0, 0.0]);
        // Second sample's rows must be zero when its weight is zero.
        assert!(g_full.row(1).norm_sq() == 0.0);
        assert!(g_full.row(0).norm_sq() > 0.0);
    }

    #[test]
    fn per_sample_matches_mean() {
        let mut rng = SeededRng::new(3);
        let logits = Tensor::randn(&[6, 5], &mut rng);
        let labels = vec![0, 1, 2, 3, 4, 0];
        let ce = SoftmaxCrossEntropy::new();
        let per = ce.per_sample(&logits, &labels);
        let mean = ce.mean(&logits, &labels);
        assert!((per.iter().sum::<f32>() / 6.0 - mean).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn rejects_out_of_range_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = SoftmaxCrossEntropy::new().per_sample(&logits, &[5]);
    }

    #[test]
    fn bce_known_values() {
        let bce = BinaryCrossEntropy::new();
        let scores = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let loss = bce.mean(&scores, &[1.0]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let mut rng = SeededRng::new(4);
        let mut scores = Tensor::randn(&[5], &mut rng);
        let targets = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let bce = BinaryCrossEntropy::new();
        let grad = bce.grad(&scores, &targets);
        let eps = 1e-3;
        for idx in 0..scores.len() {
            let orig = scores.data()[idx];
            scores.data_mut()[idx] = orig + eps;
            let plus = bce.mean(&scores, &targets);
            scores.data_mut()[idx] = orig - eps;
            let minus = bce.mean(&scores, &targets);
            scores.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((grad.data()[idx] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_extreme_scores_are_finite() {
        let bce = BinaryCrossEntropy::new();
        let scores = Tensor::from_vec(vec![100.0, -100.0], &[2]).unwrap();
        let losses = bce.per_sample(&scores, &[0.0, 1.0]);
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}
