//! The compute-kernel layer: blocked GEMM, explicit SIMD, im2col lowering
//! and scratch reuse.
//!
//! Everything expensive in this crate — dense layers, standard and depthwise
//! convolutions, their backward passes — bottoms out in the handful of
//! kernels defined here:
//!
//! * [`gemm_into`] / [`gemm_bias_cols`] — a cache-blocked, register-tiled
//!   matrix multiply (GotoBLAS-style `MC`/`KC`/`NC` macro-blocking with an
//!   `MR x NR` microkernel and packed operand panels), with a rayon
//!   row-parallel path for large problems that degrades to the serial kernel
//!   on one core.
//! * [`simd`] — the explicit-SIMD backend underneath: a portable `f32x8`
//!   abstraction with SSE2/AVX2 implementations, an AVX-512 widened
//!   microkernel, and cached runtime CPU-feature dispatch ([`active_isa`]
//!   reports the choice, [`force_isa`] / `APPEALNET_FORCE_SCALAR` pin it).
//! * [`elementwise`] — vectorized order-safe elementwise kernels (ReLU
//!   forward/backward, bias broadcast, axpy/scale, residual add) used by the
//!   hot layers and `Tensor` operations.
//! * [`im2col`](fn@im2col) / [`col2im`] — convolution-to-GEMM lowering whose
//!   column order matches the naive loop's `ic -> ky -> kx` tap order.
//! * [`KernelScratch`] / [`GrowBuf`] — high-water-mark scratch buffers so
//!   steady-state inference performs **zero** heap allocations for im2col
//!   matrices and GEMM packing panels (observable via [`scratch_stats`]).
//!   Arenas live per *thread* (see [`with_thread_scratch`]) plus a shared
//!   checkout pool for GEMM row bands, so the persistent rayon worker pool
//!   retains every high-water buffer across calls.
//!
//! # Determinism
//!
//! Every optimized kernel accumulates each output element's products in the
//! same order as the seed implementation it replaced (ascending inner
//! dimension; convolution bias seeded first). Forward passes are therefore
//! bit-identical to the original naive loops — across blocking choices,
//! problem sizes and thread counts — which the equivalence suites in this
//! module and `layers::conv` pin down against the retained [`naive`]
//! references. The one documented exception is the convolution *input*
//! gradient, where GEMM lowering sums over output channels before scattering
//! (the naive loop interleaved them); it is numerically equivalent and
//! covered by gradient checks rather than bit-equality.

pub mod elementwise;
pub mod gemm;
pub mod im2col;
pub mod naive;
pub mod scratch;
pub mod simd;

pub use gemm::{gemm_bias_cols, gemm_into, transpose_into, GemmInit, KC, MC, MR, NC, NR};
pub use im2col::{col2im, im2col};
pub use scratch::{
    enter_worker_region, in_worker_region, stats as scratch_stats, with_thread_scratch, GrowBuf,
    KernelScratch, PackScratch, ScratchStats, WorkerRegionGuard,
};
pub use simd::{active_isa, force_isa, supported_isas, Isa};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{tag}: bit mismatch at {i}: {x} vs {y}"
            );
        }
    }

    /// Property suite: the blocked GEMM is bit-identical to the seed `i-k-j`
    /// loop across odd shapes, including ones that exercise every edge path
    /// (partial microkernel tiles, multiple KC slabs, the small-problem
    /// fallback).
    #[test]
    fn blocked_gemm_is_bit_identical_to_naive_across_shapes() {
        let dims = [1usize, 3, 17, 64];
        let mut rng = SeededRng::new(0x6E_44);
        let mut packs = PackScratch::new();
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = random_vec(&mut rng, m * k);
                    let b = random_vec(&mut rng, k * n);
                    let expect = naive::matmul_naive(m, k, n, &a, &b);
                    let mut out = vec![f32::NAN; m * n];
                    gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
                    assert_bits_eq(&out, &expect, &format!("gemm {m}x{k}x{n}"));
                }
            }
        }
    }

    /// Shapes big enough to take the packed/blocked (and, with threads, the
    /// row-parallel) paths rather than the small-problem fallback.
    #[test]
    fn large_gemm_paths_match_naive_bitwise() {
        let mut rng = SeededRng::new(0x6E_45);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(96usize, 160usize, 96usize), (130, 200, 70), (65, 300, 9)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
            assert_bits_eq(&out, &expect, &format!("large gemm {m}x{k}x{n}"));
        }
    }

    /// Regression for the removed `a == 0.0` sparsity branch: on data with
    /// exact zeros sprinkled in (as ReLU activations produce), accumulating
    /// the zero products is bit-identical to skipping them.
    #[test]
    fn zero_skip_removal_preserves_results_on_sparse_and_dense_data() {
        let mut rng = SeededRng::new(0x5A_22);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(7usize, 33usize, 19usize), (64, 64, 64), (96, 96, 96)] {
            let mut a = random_vec(&mut rng, m * k);
            for v in a.iter_mut() {
                if rng.bernoulli(0.4) {
                    *v = 0.0;
                }
            }
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
            assert_bits_eq(&out, &expect, &format!("sparse gemm {m}x{k}x{n}"));
        }
    }

    /// The SIMD microkernels are bit-identical to the naive loop on every
    /// dispatchable ISA (scalar, SSE2, AVX2, AVX-512 where supported) and on
    /// the dispatched default, over remainder-heavy shapes that exercise
    /// partial tiles on every edge.
    #[test]
    fn simd_gemm_bit_identical_across_isas_on_remainder_shapes() {
        let _lock = simd::isa_override_test_lock();
        let dims = [1usize, 5, 7, 9, 31, 33];
        let mut rng = SeededRng::new(0x51_4D);
        let mut packs = PackScratch::new();
        let mut isa_modes: Vec<Option<Isa>> = supported_isas().into_iter().map(Some).collect();
        isa_modes.push(None); // the dispatched default
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = random_vec(&mut rng, m * k);
                    let b = random_vec(&mut rng, k * n);
                    let expect = naive::matmul_naive(m, k, n, &a, &b);
                    for &mode in &isa_modes {
                        let prev = force_isa(mode);
                        let mut out = vec![f32::NAN; m * n];
                        gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
                        force_isa(prev);
                        assert_bits_eq(&out, &expect, &format!("gemm {m}x{k}x{n} isa={mode:?}"));
                    }
                }
            }
        }
    }

    /// Shapes large enough for the blocked/packed path (multiple `KC` slabs,
    /// paired AVX-512 strips, ragged microkernel edges) stay bit-identical
    /// to the naive loop on every ISA, for every [`GemmInit`] mode.
    #[test]
    fn simd_blocked_paths_bit_identical_across_isas() {
        let _lock = simd::isa_override_test_lock();
        let mut rng = SeededRng::new(0x51_4E);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(96usize, 160usize, 96usize), (130, 200, 70), (37, 300, 33)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let seed_out = random_vec(&mut rng, m * n);
            for isa in supported_isas() {
                let prev = force_isa(Some(isa));
                for mode in 0..3 {
                    let (init, mut out) = match mode {
                        0 => (GemmInit::Zero, vec![f32::NAN; m * n]),
                        1 => (GemmInit::Accumulate, seed_out.clone()),
                        _ => (GemmInit::RowBias(&bias), vec![f32::NAN; m * n]),
                    };
                    let mut expect = match mode {
                        0 => vec![0.0f32; m * n],
                        1 => seed_out.clone(),
                        _ => {
                            let mut e = vec![0.0f32; m * n];
                            for i in 0..m {
                                e[i * n..(i + 1) * n].fill(bias[i]);
                            }
                            e
                        }
                    };
                    for i in 0..m {
                        for p in 0..k {
                            let av = a[i * k + p];
                            for j in 0..n {
                                expect[i * n + j] += av * b[p * n + j];
                            }
                        }
                    }
                    gemm_into(m, k, n, &a, &b, init, &mut out, &mut packs);
                    assert_bits_eq(&out, &expect, &format!("{m}x{k}x{n} mode={mode} {isa}"));
                }
                force_isa(prev);
            }
        }
    }

    /// `Accumulate` keeps the existing output and adds products in `p` order
    /// — the weight-gradient convention.
    #[test]
    fn accumulate_mode_extends_existing_output() {
        let mut rng = SeededRng::new(0xAC_C0);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(5usize, 9usize, 11usize), (70, 150, 40)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let seed_out = random_vec(&mut rng, m * n);
            // Reference: start from seed_out, accumulate naive i-k-j order.
            let mut expect = seed_out.clone();
            for i in 0..m {
                for p in 0..k {
                    let av = a[i * k + p];
                    for j in 0..n {
                        expect[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            let mut out = seed_out.clone();
            gemm_into(m, k, n, &a, &b, GemmInit::Accumulate, &mut out, &mut packs);
            assert_bits_eq(&out, &expect, &format!("accumulate {m}x{k}x{n}"));
        }
    }

    /// `RowBias` seeds each row's accumulator before the products — the
    /// convolution-forward convention.
    #[test]
    fn row_bias_mode_seeds_accumulators_first() {
        let mut rng = SeededRng::new(0xB1_A5);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(3usize, 17usize, 5usize), (80, 140, 33)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let mut expect = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    expect[i * n + j] = bias[i];
                }
                for p in 0..k {
                    let av = a[i * k + p];
                    for j in 0..n {
                        expect[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_into(
                m,
                k,
                n,
                &a,
                &b,
                GemmInit::RowBias(&bias),
                &mut out,
                &mut packs,
            );
            assert_bits_eq(&out, &expect, &format!("row bias {m}x{k}x{n}"));
        }
    }

    /// The fused column-bias GEMM matches `matmul` followed by
    /// `add_row_broadcast` bit-for-bit.
    #[test]
    fn fused_col_bias_matches_unfused_pair() {
        let mut rng = SeededRng::new(0xF0_5E);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(4usize, 6usize, 3usize), (33, 120, 65)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, n);
            let mut expect = naive::matmul_naive(m, k, n, &a, &b);
            for row in expect.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_bias_cols(m, k, n, &a, &b, &bias, &mut out, &mut packs);
            assert_bits_eq(&out, &expect, &format!("fused bias {m}x{k}x{n}"));
        }
    }

    #[test]
    fn k_zero_applies_only_the_initialization() {
        let mut packs = PackScratch::new();
        let mut out = vec![3.0f32; 6];
        gemm_into(2, 0, 3, &[], &[], GemmInit::Zero, &mut out, &mut packs);
        assert_eq!(out, vec![0.0; 6]);
        let bias = [1.0f32, 2.0];
        gemm_into(
            2,
            0,
            3,
            &[],
            &[],
            GemmInit::RowBias(&bias),
            &mut out,
            &mut packs,
        );
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn transpose_into_round_trips() {
        let mut rng = SeededRng::new(0x7A_01);
        let src = random_vec(&mut rng, 5 * 7);
        let mut t = vec![0.0f32; 35];
        transpose_into(&src, 5, 7, &mut t);
        let mut back = vec![0.0f32; 35];
        transpose_into(&t, 7, 5, &mut back);
        assert_eq!(src, back);
        assert_eq!(t[0], src[0]);
        assert_eq!(t[5], src[1]); // (0,1) -> (1,0)
    }
}
