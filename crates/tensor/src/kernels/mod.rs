//! The compute-kernel layer: blocked GEMM, explicit SIMD, im2col lowering
//! and scratch reuse.
//!
//! Everything expensive in this crate — dense layers, standard and depthwise
//! convolutions, their backward passes — bottoms out in the handful of
//! kernels defined here:
//!
//! * [`gemm_into`] / [`gemm_bias_cols`] — a cache-blocked, register-tiled
//!   matrix multiply (GotoBLAS-style `MC`/`KC`/`NC` macro-blocking with an
//!   `MR x NR` microkernel and packed operand panels), with a rayon
//!   row-parallel path for large problems that degrades to the serial kernel
//!   on one core.
//! * [`simd`] — the explicit-SIMD backend underneath: a portable `f32x8`
//!   abstraction with SSE2/AVX2 implementations, an AVX-512 widened
//!   microkernel, and cached runtime CPU-feature dispatch ([`active_isa`]
//!   reports the choice, [`force_isa`] / `APPEALNET_FORCE_SCALAR` pin it).
//! * [`elementwise`] — vectorized order-safe elementwise kernels (ReLU
//!   forward/backward, bias broadcast, axpy/scale, residual add) used by the
//!   hot layers and `Tensor` operations.
//! * [`im2col`](fn@im2col) / [`col2im`] — convolution-to-GEMM lowering whose
//!   column order matches the naive loop's `ic -> ky -> kx` tap order.
//! * [`KernelScratch`] / [`GrowBuf`] — high-water-mark scratch buffers so
//!   steady-state inference performs **zero** heap allocations for im2col
//!   matrices and GEMM packing panels (observable via [`scratch_stats`]).
//!   Arenas live per *thread* (see [`with_thread_scratch`]) plus a shared
//!   checkout pool for GEMM row bands, so the persistent rayon worker pool
//!   retains every high-water buffer across calls.
//!
//! * [`quant_gemm_into`] — the int8 GEMM behind the quantized (Q8_0)
//!   little-net tier: pre-quantized weights, on-the-fly activation
//!   quantization, widening integer SIMD, the same band-parallel shape as
//!   the f32 driver.
//!
//! # Determinism
//!
//! The crate ships **three numeric contracts**, reported at runtime by
//! [`numeric_contract`] (build-selected) and [`quantized_contract`] (the
//! full specification lives in `docs/DETERMINISM.md`):
//!
//! * **Default build —
//!   [`BitIdenticalToSeed`](NumericContract::BitIdenticalToSeed).** Every
//!   optimized kernel accumulates each output element's products in the
//!   same order as the seed implementation it replaced (ascending inner
//!   dimension; convolution bias seeded first), and multiplication and
//!   addition stay separate roundings. Forward passes are therefore
//!   bit-identical to the original naive loops — across blocking choices,
//!   problem sizes, thread counts and ISA backends — which the equivalence
//!   suites in this module and `layers::conv` pin down against the retained
//!   [`naive`] references. The one documented exception is the convolution
//!   *input* gradient, where GEMM lowering sums over output channels before
//!   scattering (the naive loop interleaved them); it is numerically
//!   equivalent and covered by gradient checks rather than bit-equality.
//! * **`fast-kernels` build —
//!   [`DeterministicPerBuild`](NumericContract::DeterministicPerBuild).**
//!   The AVX2/AVX-512 GEMM microkernels and [`elementwise::axpy`] contract
//!   `a * b + c` into a single `fmadd` rounding ([`simd`] has the tier
//!   rules; [`fma_supported`] / [`fused_active`] report them at runtime).
//!   Results then match the seed within the per-accumulation-step error
//!   bounds of the [`tolerance`] harness instead of bit-for-bit, but remain
//!   bit-identical **across runs and thread counts on any one build**:
//!   accumulation order is still never reassociated, row bands and batch
//!   shards split work without changing per-element operation sequences,
//!   and the fused AVX2/AVX-512 kernels are bit-identical to each other.
//!   Scalar- or SSE2-forced dispatch (including `APPEALNET_FORCE_SCALAR`)
//!   never fuses and so still reproduces the seed exactly.
//! * **Quantized path —
//!   [`QuantizedTolerance`](NumericContract::QuantizedTolerance).** The
//!   Q8_0 kernels are bit-identical everywhere — on every ISA, thread
//!   count and **both** build tiers (no fused variant exists for integer
//!   arithmetic) — but differ from the f32 network by the quantization
//!   error itself, bounded per value by [`tolerance::quantization_bound`]
//!   plus the cross-block accumulation bound.

pub mod elementwise;
pub mod gemm;
pub mod im2col;
pub mod naive;
pub mod quant_gemm;
pub mod scratch;
pub mod simd;
pub mod tolerance;

pub use gemm::{gemm_bias_cols, gemm_into, transpose_into, GemmInit, KC, MC, MR, NC, NR};
pub use im2col::{col2im, im2col};
pub use quant_gemm::quant_gemm_into;
pub use scratch::{
    enter_worker_region, in_worker_region, stats as scratch_stats, with_thread_scratch, GrowBuf,
    KernelScratch, PackScratch, QuantScratch, ScratchStats, WorkerRegionGuard,
};
pub use simd::{
    active_isa, fma_supported, force_fused, force_isa, fused_active, supported_isas, Isa,
};

/// The numeric guarantee a build of this kernel layer provides — one of the
/// two contracts specified in `docs/DETERMINISM.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericContract {
    /// Default build: every kernel result is bit-identical to the seed
    /// (naive reference) implementation on every ISA, thread count and
    /// blocking choice.
    BitIdenticalToSeed,
    /// `fast-kernels` build: results are bit-identical across runs and
    /// thread counts of *this* build (and across the fused backends), and
    /// tolerance-bounded against the seed references — FMA contraction
    /// removes one rounding per accumulation step where the host supports
    /// it.
    DeterministicPerBuild,
    /// The quantized (Q8_0) inference path: results are bit-identical
    /// across runs, thread counts, ISAs **and both build tiers** (the
    /// integer kernels have no fused variant), but differ from the f32
    /// reference by the quantization error itself, bounded per value by
    /// half a block-scale step ([`tolerance::quantization_bound`]) plus
    /// the cross-block accumulation bound.
    QuantizedTolerance,
}

impl NumericContract {
    /// Short stable name, for reports and debug output
    /// (`"bit-identical-to-seed"` / `"deterministic-per-build"` /
    /// `"quantized-tolerance"`).
    pub fn name(self) -> &'static str {
        match self {
            NumericContract::BitIdenticalToSeed => "bit-identical-to-seed",
            NumericContract::DeterministicPerBuild => "deterministic-per-build",
            NumericContract::QuantizedTolerance => "quantized-tolerance",
        }
    }
}

impl std::fmt::Display for NumericContract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The numeric contract this build was compiled under: a compile-time
/// property of the `fast-kernels` feature, independent of what the host CPU
/// ends up dispatching (a `fast-kernels` build on a non-FMA host computes
/// seed-identical results but still only *promises* per-build determinism —
/// use [`fused_active`] to ask what the dispatched kernels actually do).
pub fn numeric_contract() -> NumericContract {
    if cfg!(feature = "fast-kernels") {
        NumericContract::DeterministicPerBuild
    } else {
        NumericContract::BitIdenticalToSeed
    }
}

/// The contract governing the quantized (Q8_0) inference path. Unlike
/// [`numeric_contract`] it is independent of the build tier: the int8
/// kernels never fuse, so a quantized little net computes bit-identical
/// results on every build, ISA and thread count — it simply is not the f32
/// network, and its divergence from f32 is what the
/// [`QuantizedTolerance`](NumericContract::QuantizedTolerance) bound
/// describes (see `docs/DETERMINISM.md`).
pub fn quantized_contract() -> NumericContract {
    NumericContract::QuantizedTolerance
}

#[cfg(test)]
mod tests {
    use super::tolerance::assert_bits_eq;
    use super::*;
    use crate::rng::SeededRng;

    fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
    }

    /// Contract-following check of a GEMM result against its reference:
    /// bit equality on the default build, the k-step accumulation bound
    /// under `fast-kernels` (see [`tolerance::assert_matches_reference`];
    /// the scales are computed lazily, only in the tolerance branch).
    #[allow(clippy::too_many_arguments)]
    fn assert_gemm_matches(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        seed: Option<&[f32]>,
        got: &[f32],
        want: &[f32],
        tag: &str,
    ) {
        tolerance::assert_matches_reference(
            got,
            want,
            || tolerance::gemm_abs_scales(m, k, n, a, b, seed),
            k + 1,
            tag,
        );
    }

    /// Property suite: the blocked GEMM is bit-identical to the seed `i-k-j`
    /// loop across odd shapes, including ones that exercise every edge path
    /// (partial microkernel tiles, multiple KC slabs, the small-problem
    /// fallback).
    #[test]
    fn blocked_gemm_is_bit_identical_to_naive_across_shapes() {
        let dims = [1usize, 3, 17, 64];
        let mut rng = SeededRng::new(0x6E_44);
        let mut packs = PackScratch::new();
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = random_vec(&mut rng, m * k);
                    let b = random_vec(&mut rng, k * n);
                    let expect = naive::matmul_naive(m, k, n, &a, &b);
                    let mut out = vec![f32::NAN; m * n];
                    gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
                    assert_gemm_matches(
                        m,
                        k,
                        n,
                        &a,
                        &b,
                        None,
                        &out,
                        &expect,
                        &format!("gemm {m}x{k}x{n}"),
                    );
                }
            }
        }
    }

    /// Shapes big enough to take the packed/blocked (and, with threads, the
    /// row-parallel) paths rather than the small-problem fallback.
    #[test]
    fn large_gemm_paths_match_naive_bitwise() {
        let mut rng = SeededRng::new(0x6E_45);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(96usize, 160usize, 96usize), (130, 200, 70), (65, 300, 9)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
            assert_gemm_matches(
                m,
                k,
                n,
                &a,
                &b,
                None,
                &out,
                &expect,
                &format!("large gemm {m}x{k}x{n}"),
            );
        }
    }

    /// Regression for the removed `a == 0.0` sparsity branch: on data with
    /// exact zeros sprinkled in (as ReLU activations produce), accumulating
    /// the zero products is bit-identical to skipping them.
    #[test]
    fn zero_skip_removal_preserves_results_on_sparse_and_dense_data() {
        let mut rng = SeededRng::new(0x5A_22);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(7usize, 33usize, 19usize), (64, 64, 64), (96, 96, 96)] {
            let mut a = random_vec(&mut rng, m * k);
            for v in a.iter_mut() {
                if rng.bernoulli(0.4) {
                    *v = 0.0;
                }
            }
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
            assert_gemm_matches(
                m,
                k,
                n,
                &a,
                &b,
                None,
                &out,
                &expect,
                &format!("sparse gemm {m}x{k}x{n}"),
            );
        }
    }

    /// The SIMD microkernels are bit-identical to the naive loop on every
    /// dispatchable ISA (scalar, SSE2, AVX2, AVX-512 where supported) and on
    /// the dispatched default, over remainder-heavy shapes that exercise
    /// partial tiles on every edge.
    #[test]
    fn simd_gemm_bit_identical_across_isas_on_remainder_shapes() {
        let _lock = simd::isa_override_test_lock();
        let dims = [1usize, 5, 7, 9, 31, 33];
        let mut rng = SeededRng::new(0x51_4D);
        let mut packs = PackScratch::new();
        let mut isa_modes: Vec<Option<Isa>> = supported_isas().into_iter().map(Some).collect();
        isa_modes.push(None); // the dispatched default
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = random_vec(&mut rng, m * k);
                    let b = random_vec(&mut rng, k * n);
                    let expect = naive::matmul_naive(m, k, n, &a, &b);
                    for &mode in &isa_modes {
                        let prev = force_isa(mode);
                        let fused = fused_active();
                        let mut out = vec![f32::NAN; m * n];
                        gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
                        force_isa(prev);
                        let tag = format!("gemm {m}x{k}x{n} isa={mode:?}");
                        if fused {
                            assert_gemm_matches(m, k, n, &a, &b, None, &out, &expect, &tag);
                        } else {
                            // Unfused backends reproduce the seed exactly,
                            // on both builds.
                            assert_bits_eq(&out, &expect, &tag);
                        }
                    }
                }
            }
        }
    }

    /// Shapes large enough for the blocked/packed path (multiple `KC` slabs,
    /// paired AVX-512 strips, ragged microkernel edges) stay bit-identical
    /// to the naive loop on every ISA, for every [`GemmInit`] mode.
    #[test]
    fn simd_blocked_paths_bit_identical_across_isas() {
        let _lock = simd::isa_override_test_lock();
        let mut rng = SeededRng::new(0x51_4E);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(96usize, 160usize, 96usize), (130, 200, 70), (37, 300, 33)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let seed_out = random_vec(&mut rng, m * n);
            let mut bias_rows = vec![0.0f32; m * n];
            for i in 0..m {
                bias_rows[i * n..(i + 1) * n].fill(bias[i]);
            }
            for isa in supported_isas() {
                let prev = force_isa(Some(isa));
                let fused_for_this = fused_active();
                for mode in 0..3 {
                    let (init, mut out) = match mode {
                        0 => (GemmInit::Zero, vec![f32::NAN; m * n]),
                        1 => (GemmInit::Accumulate, seed_out.clone()),
                        _ => (GemmInit::RowBias(&bias), vec![f32::NAN; m * n]),
                    };
                    let mut expect = match mode {
                        0 => vec![0.0f32; m * n],
                        1 => seed_out.clone(),
                        _ => {
                            let mut e = vec![0.0f32; m * n];
                            for i in 0..m {
                                e[i * n..(i + 1) * n].fill(bias[i]);
                            }
                            e
                        }
                    };
                    for i in 0..m {
                        for p in 0..k {
                            let av = a[i * k + p];
                            for j in 0..n {
                                expect[i * n + j] += av * b[p * n + j];
                            }
                        }
                    }
                    gemm_into(m, k, n, &a, &b, init, &mut out, &mut packs);
                    let tag = format!("{m}x{k}x{n} mode={mode} {isa}");
                    if fused_for_this {
                        let seed_abs = match mode {
                            0 => None,
                            1 => Some(seed_out.as_slice()),
                            _ => Some(bias_rows.as_slice()),
                        };
                        assert_gemm_matches(m, k, n, &a, &b, seed_abs, &out, &expect, &tag);
                    } else {
                        assert_bits_eq(&out, &expect, &tag);
                    }
                }
                force_isa(prev);
            }
        }
    }

    /// `Accumulate` keeps the existing output and adds products in `p` order
    /// — the weight-gradient convention.
    #[test]
    fn accumulate_mode_extends_existing_output() {
        let mut rng = SeededRng::new(0xAC_C0);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(5usize, 9usize, 11usize), (70, 150, 40)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let seed_out = random_vec(&mut rng, m * n);
            // Reference: start from seed_out, accumulate naive i-k-j order.
            let mut expect = seed_out.clone();
            for i in 0..m {
                for p in 0..k {
                    let av = a[i * k + p];
                    for j in 0..n {
                        expect[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            let mut out = seed_out.clone();
            gemm_into(m, k, n, &a, &b, GemmInit::Accumulate, &mut out, &mut packs);
            assert_gemm_matches(
                m,
                k,
                n,
                &a,
                &b,
                Some(&seed_out),
                &out,
                &expect,
                &format!("accumulate {m}x{k}x{n}"),
            );
        }
    }

    /// `RowBias` seeds each row's accumulator before the products — the
    /// convolution-forward convention.
    #[test]
    fn row_bias_mode_seeds_accumulators_first() {
        let mut rng = SeededRng::new(0xB1_A5);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(3usize, 17usize, 5usize), (80, 140, 33)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let mut expect = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    expect[i * n + j] = bias[i];
                }
                for p in 0..k {
                    let av = a[i * k + p];
                    for j in 0..n {
                        expect[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_into(
                m,
                k,
                n,
                &a,
                &b,
                GemmInit::RowBias(&bias),
                &mut out,
                &mut packs,
            );
            let mut bias_rows = vec![0.0f32; m * n];
            for i in 0..m {
                bias_rows[i * n..(i + 1) * n].fill(bias[i]);
            }
            assert_gemm_matches(
                m,
                k,
                n,
                &a,
                &b,
                Some(&bias_rows),
                &out,
                &expect,
                &format!("row bias {m}x{k}x{n}"),
            );
        }
    }

    /// The fused column-bias GEMM matches `matmul` followed by
    /// `add_row_broadcast` bit-for-bit.
    #[test]
    fn fused_col_bias_matches_unfused_pair() {
        let mut rng = SeededRng::new(0xF0_5E);
        let mut packs = PackScratch::new();
        for &(m, k, n) in &[(4usize, 6usize, 3usize), (33, 120, 65)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, n);
            let mut expect = naive::matmul_naive(m, k, n, &a, &b);
            for row in expect.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_bias_cols(m, k, n, &a, &b, &bias, &mut out, &mut packs);
            let mut bias_rows = vec![0.0f32; m * n];
            for row in bias_rows.chunks_exact_mut(n) {
                row.copy_from_slice(&bias);
            }
            assert_gemm_matches(
                m,
                k,
                n,
                &a,
                &b,
                Some(&bias_rows),
                &out,
                &expect,
                &format!("fused bias {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn k_zero_applies_only_the_initialization() {
        let mut packs = PackScratch::new();
        let mut out = vec![3.0f32; 6];
        gemm_into(2, 0, 3, &[], &[], GemmInit::Zero, &mut out, &mut packs);
        assert_eq!(out, vec![0.0; 6]);
        let bias = [1.0f32, 2.0];
        gemm_into(
            2,
            0,
            3,
            &[],
            &[],
            GemmInit::RowBias(&bias),
            &mut out,
            &mut packs,
        );
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    /// `fast-kernels` on an FMA host: the fused tier must genuinely diverge
    /// from the seed somewhere (otherwise the feature is silently inert),
    /// stay within the tolerance contract while doing so, agree bit-for-bit
    /// between the fused AVX2 and AVX-512 kernels (identical per-element
    /// fma sequences), and collapse back to seed bit-identity when forced
    /// off.
    #[test]
    #[cfg(feature = "fast-kernels")]
    fn fused_tier_diverges_within_bound_and_collapses_when_forced_off() {
        let _lock = simd::isa_override_test_lock();
        if !fma_supported() || active_isa() < Isa::Avx2 {
            eprintln!("skipping fused-tier test: no FMA-capable backend on this host");
            return;
        }
        let mut rng = SeededRng::new(0xF_A57);
        let mut packs = PackScratch::new();
        let mut diverging_elements = 0usize;
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (96, 160, 96), (130, 200, 70)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let tag = format!("fused gemm {m}x{k}x{n}");

            // Forced-off tier: exactly the seed, bit for bit.
            let prev = force_fused(Some(false));
            let mut unfused = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut unfused, &mut packs);
            force_fused(Some(true));
            let mut fused = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut fused, &mut packs);
            force_fused(prev);
            assert_bits_eq(&unfused, &expect, &format!("{tag} forced-off"));

            // Fused tier: inside the accumulation bound of the seed.
            let scales = tolerance::gemm_abs_scales(m, k, n, &a, &b, None);
            tolerance::check_accumulation(&fused, &expect, &scales, k)
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            diverging_elements += fused
                .iter()
                .zip(expect.iter())
                .filter(|(x, y)| x.to_bits() != y.to_bits())
                .count();

            // The fused AVX2 and AVX-512 kernels run the identical
            // per-element fma sequence: bit-identical to each other even
            // though both differ from the seed.
            if supported_isas().contains(&Isa::Avx512) {
                let prev = force_isa(Some(Isa::Avx2));
                let mut avx2_out = vec![f32::NAN; m * n];
                gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut avx2_out, &mut packs);
                force_isa(Some(Isa::Avx512));
                let mut avx512_out = vec![f32::NAN; m * n];
                gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut avx512_out, &mut packs);
                force_isa(prev);
                assert_bits_eq(&avx2_out, &avx512_out, &format!("{tag} avx2-vs-avx512"));
            }
        }
        assert!(
            diverging_elements > 0,
            "the fused tier never diverged from the seed — FMA contraction \
             is not reaching the dispatched kernels"
        );
    }

    /// The paths documented as unfused-by-design must reproduce the seed
    /// bit-for-bit even with the fused tier forced ON: the small-problem
    /// `i-k-j` fallback (under `SMALL_PROBLEM_MACS` — "parity is expected
    /// there") and the blocked kernel's edge tiles (shapes where every
    /// tile is partial, e.g. `m < MR`). Guards the docs' claim against a
    /// regression that makes either path consult the fused flag.
    #[test]
    #[cfg(feature = "fast-kernels")]
    fn small_problem_and_edge_tile_paths_stay_seed_identical_when_fused() {
        let _lock = simd::isa_override_test_lock();
        if !fma_supported() || active_isa() < Isa::Avx2 {
            eprintln!("skipping unfused-path test: no FMA-capable backend on this host");
            return;
        }
        let mut rng = SeededRng::new(0x5E_ED);
        let mut packs = PackScratch::new();
        let prev = force_fused(Some(true));
        // Small problems: 32^3 = 32K MACs sits at the i-k-j threshold, the
        // odd shapes stay well under it.
        for &(m, k, n) in &[(32usize, 32usize, 32usize), (5, 17, 9), (1, 300, 64)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let expect = naive::matmul_naive(m, k, n, &a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
            assert_bits_eq(&out, &expect, &format!("fused-on small {m}x{k}x{n}"));
        }
        // Edge tiles: m = 3 < MR forces every microkernel tile onto the
        // scalar edge path while the MAC count (3*300*40 = 36K) takes the
        // blocked route.
        let (m, k, n) = (3usize, 300usize, 40usize);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let expect = naive::matmul_naive(m, k, n, &a, &b);
        let mut out = vec![f32::NAN; m * n];
        gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut out, &mut packs);
        assert_bits_eq(&out, &expect, "fused-on all-edge-tile blocked gemm");
        force_fused(prev);
    }

    /// The contract report is a build property: it must say
    /// deterministic-per-build exactly when the feature is compiled in.
    #[test]
    fn numeric_contract_reflects_build() {
        let expected = if cfg!(feature = "fast-kernels") {
            NumericContract::DeterministicPerBuild
        } else {
            NumericContract::BitIdenticalToSeed
        };
        assert_eq!(numeric_contract(), expected);
        assert!(
            !numeric_contract().name().is_empty()
                && numeric_contract().to_string() == numeric_contract().name()
        );
    }

    #[test]
    fn transpose_into_round_trips() {
        let mut rng = SeededRng::new(0x7A_01);
        let src = random_vec(&mut rng, 5 * 7);
        let mut t = vec![0.0f32; 35];
        transpose_into(&src, 5, 7, &mut t);
        let mut back = vec![0.0f32; 35];
        transpose_into(&t, 7, 5, &mut back);
        assert_eq!(src, back);
        assert_eq!(t[0], src[0]);
        assert_eq!(t[5], src[1]); // (0,1) -> (1,0)
    }
}
