//! Order-safe vectorized elementwise kernels.
//!
//! The hot layers spend their non-GEMM time in a handful of elementwise
//! loops: ReLU forward/backward, bias broadcasts, `y += alpha * x` parameter
//! updates, scalar scaling and residual adds. Each kernel here has one
//! scalar reference implementation and SIMD instantiations over the
//! portable `F32x8` abstraction in [`super::simd`], selected per call by
//! [`super::simd::active_isa`].
//!
//! # Determinism
//!
//! Lanes are independent elements and every lane performs exactly the scalar
//! reference's operation sequence (a single IEEE add/mul, or a bitwise
//! select), so all backends are **bit-identical** — pinned by the
//! equivalence tests below across every [`super::simd::supported_isas`]
//! entry. The one exception is opt-in: under the `fast-kernels` feature,
//! [`axpy`] — the only elementwise kernel with a contractible `a * x + y`
//! chain — fuses into one `fmadd` per element on AVX2/AVX-512 FMA hosts and
//! then matches the seed within a one-ulp-per-element bound instead of
//! bit-for-bit (see `docs/DETERMINISM.md`); `scale`, `add` and the
//! ReLU/bias kernels perform a single rounding per element, so they are
//! identical in both tiers.
//!
//! ReLU is defined as the branchless select `x > 0.0 ? x : 0.0` (compare +
//! bitwise AND): identical to the previous `x.max(0.0)` for every input
//! except that a `-0.0` input now deterministically produces `+0.0` on all
//! backends (IEEE `maxNum` leaves the zero's sign unspecified), and a NaN
//! input produces `+0.0` on every backend. The backward mask is stored as
//! all-ones/all-zeros `u32` words so the gradient select is a single AND on
//! every backend.
#![allow(unsafe_code)] // SIMD instantiations; see `simd.rs` for the policy.

use super::simd::{active_isa, F32x8, Isa};

/// One ReLU forward element: branchless `x > 0.0` select (see module docs).
#[inline(always)]
fn relu_one(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// One ReLU mask word: all-ones where the input was strictly positive.
#[inline(always)]
fn relu_mask_one(x: f32) -> u32 {
    if x > 0.0 {
        u32::MAX
    } else {
        0
    }
}

/// One ReLU backward element: gradient bits AND mask word.
#[inline(always)]
fn relu_bwd_one(g: f32, m: u32) -> f32 {
    f32::from_bits(g.to_bits() & m)
}

// ---------------------------------------------------------------------------
// Generic vector bodies (instantiated per ISA below).
// ---------------------------------------------------------------------------

/// # Safety
///
/// `V`'s CPU feature must be active; `src.len() == dst.len()`.
#[inline(always)]
unsafe fn relu_fwd_v<V: F32x8>(src: &[f32], dst: &mut [f32]) {
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let x = V::load(src.as_ptr().add(i));
        x.and(x.gt_zero_mask()).store(dst.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        dst[j] = relu_one(src[j]);
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; all three slices have equal length.
#[inline(always)]
unsafe fn relu_fwd_mask_v<V: F32x8>(src: &[f32], dst: &mut [f32], mask: &mut [u32]) {
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let x = V::load(src.as_ptr().add(i));
        let m = x.gt_zero_mask();
        m.store(mask.as_mut_ptr().add(i).cast::<f32>());
        x.and(m).store(dst.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        mask[j] = relu_mask_one(src[j]);
        dst[j] = relu_one(src[j]);
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; all three slices have equal length.
#[inline(always)]
unsafe fn relu_bwd_v<V: F32x8>(grad: &[f32], mask: &[u32], dst: &mut [f32]) {
    let n = grad.len();
    let mut i = 0;
    while i + 8 <= n {
        let g = V::load(grad.as_ptr().add(i));
        let m = V::load(mask.as_ptr().add(i).cast::<f32>());
        g.and(m).store(dst.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        dst[j] = relu_bwd_one(grad[j], mask[j]);
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; `a`, `b` and `dst` have equal length.
#[inline(always)]
unsafe fn add_v<V: F32x8>(a: &[f32], b: &[f32], dst: &mut [f32]) {
    let n = a.len();
    let mut i = 0;
    while i + 8 <= n {
        let x = V::load(a.as_ptr().add(i));
        let y = V::load(b.as_ptr().add(i));
        x.add(y).store(dst.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        dst[j] = a[j] + b[j];
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; `x` and `y` have equal length.
#[inline(always)]
unsafe fn axpy_v<V: F32x8>(alpha: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let av = V::splat(alpha);
    let mut i = 0;
    while i + 8 <= n {
        let xv = V::load(x.as_ptr().add(i));
        let yv = V::load(y.as_ptr().add(i));
        yv.add(av.mul(xv)).store(y.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        y[j] += alpha * x[j];
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; `src` and `dst` have equal length.
#[inline(always)]
unsafe fn scale_v<V: F32x8>(src: &[f32], alpha: f32, dst: &mut [f32]) {
    let n = src.len();
    let av = V::splat(alpha);
    let mut i = 0;
    while i + 8 <= n {
        V::load(src.as_ptr().add(i))
            .mul(av)
            .store(dst.as_mut_ptr().add(i));
        i += 8;
    }
    for j in i..n {
        dst[j] = src[j] * alpha;
    }
}

/// # Safety
///
/// `V`'s CPU feature must be active; `data.len()` is a multiple of
/// `bias.len()`.
#[inline(always)]
unsafe fn bias_add_rows_v<V: F32x8>(data: &mut [f32], bias: &[f32]) {
    let c = bias.len();
    for row in data.chunks_exact_mut(c) {
        let mut i = 0;
        while i + 8 <= c {
            let b = V::load(bias.as_ptr().add(i));
            let o = V::load(row.as_ptr().add(i));
            o.add(b).store(row.as_mut_ptr().add(i));
            i += 8;
        }
        for j in i..c {
            row[j] += bias[j];
        }
    }
}

// ---------------------------------------------------------------------------
// Per-ISA instantiations + scalar reference loops.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
macro_rules! isa_instantiations {
    ($mod_name:ident, $vec:ty, $feature:literal) => {
        mod $mod_name {
            use super::super::simd::*;

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu_fwd(src: &[f32], dst: &mut [f32]) {
                super::relu_fwd_v::<$vec>(src, dst);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu_fwd_mask(src: &[f32], dst: &mut [f32], mask: &mut [u32]) {
                super::relu_fwd_mask_v::<$vec>(src, dst, mask);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu_bwd(grad: &[f32], mask: &[u32], dst: &mut [f32]) {
                super::relu_bwd_v::<$vec>(grad, mask, dst);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add(a: &[f32], b: &[f32], dst: &mut [f32]) {
                super::add_v::<$vec>(a, b, dst);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
                super::axpy_v::<$vec>(alpha, x, y);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn scale(src: &[f32], alpha: f32, dst: &mut [f32]) {
                super::scale_v::<$vec>(src, alpha, dst);
            }

            /// # Safety: caller must have verified the CPU feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn bias_add_rows(data: &mut [f32], bias: &[f32]) {
                super::bias_add_rows_v::<$vec>(data, bias);
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
isa_instantiations!(sse2, Sse2V, "sse2");
#[cfg(target_arch = "x86_64")]
isa_instantiations!(avx2, Avx2V, "avx2");

/// The fused (FMA) tier of the one elementwise kernel with a contractible
/// `mul` + `add` chain: `axpy`. Compiled only under `fast-kernels` and
/// dispatched when [`super::simd::fused_for_isa`] holds for the active ISA,
/// mirroring the GEMM microkernel tier so one build setting governs every
/// kernel. `scale` (one `mul` per element), `add` (one `add`) and the
/// ReLU/bias kernels have nothing to fuse and are shared by both tiers
/// unchanged.
#[cfg(all(target_arch = "x86_64", feature = "fast-kernels"))]
mod avx2_fma {
    use std::arch::x86_64::*;

    /// `y[i] = fma(alpha, x[i], y[i])` for **every** element — the vector
    /// body and the scalar tail both fuse, so the fast tier's axpy is one
    /// rounding per element uniformly.
    ///
    /// # Safety
    ///
    /// Caller must have verified the `avx2` and `fma` CPU features;
    /// `x.len() == y.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let av = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
            i += 8;
        }
        for j in i..n {
            // Compiles to a scalar vfmadd under the enabled feature.
            y[j] = alpha.mul_add(x[j], y[j]);
        }
    }
}

mod scalar {
    //! Scalar reference loops — the semantics every vector backend must
    //! reproduce bit-for-bit.

    pub(super) fn relu_fwd(src: &[f32], dst: &mut [f32]) {
        for (d, &x) in dst.iter_mut().zip(src.iter()) {
            *d = super::relu_one(x);
        }
    }

    pub(super) fn relu_fwd_mask(src: &[f32], dst: &mut [f32], mask: &mut [u32]) {
        for ((d, m), &x) in dst.iter_mut().zip(mask.iter_mut()).zip(src.iter()) {
            *m = super::relu_mask_one(x);
            *d = super::relu_one(x);
        }
    }

    pub(super) fn relu_bwd(grad: &[f32], mask: &[u32], dst: &mut [f32]) {
        for ((d, &g), &m) in dst.iter_mut().zip(grad.iter()).zip(mask.iter()) {
            *d = super::relu_bwd_one(g, m);
        }
    }

    pub(super) fn add(a: &[f32], b: &[f32], dst: &mut [f32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a.iter()).zip(b.iter()) {
            *d = x + y;
        }
    }

    pub(super) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yv, &xv) in y.iter_mut().zip(x.iter()) {
            *yv += alpha * xv;
        }
    }

    pub(super) fn scale(src: &[f32], alpha: f32, dst: &mut [f32]) {
        for (d, &x) in dst.iter_mut().zip(src.iter()) {
            *d = x * alpha;
        }
    }

    pub(super) fn bias_add_rows(data: &mut [f32], bias: &[f32]) {
        for row in data.chunks_exact_mut(bias.len()) {
            for (o, &b) in row.iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
    }
}

/// Dispatches one elementwise kernel on the active ISA. The AVX-512 backend
/// reuses the AVX2 instantiation: these loops are memory-bound, so wider
/// vectors buy nothing, and 256-bit ops avoid license-based downclocking.
macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match active_isa() {
            Isa::Scalar => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `active_isa` only reports features the host has.
            Isa::Sse2 => unsafe { sse2::$name($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; AVX-512 hosts always have AVX2.
            Isa::Avx2 | Isa::Avx512 => unsafe { avx2::$name($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::$name($($arg),*),
        }
    };
}

/// `dst[i] = src[i] > 0.0 ? src[i] : 0.0`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn relu_fwd(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "relu_fwd length mismatch");
    dispatch!(relu_fwd(src, dst));
}

/// ReLU forward that also records the backward mask: `mask[i]` is all-ones
/// where `src[i] > 0.0`, zero elsewhere.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn relu_fwd_mask(src: &[f32], dst: &mut [f32], mask: &mut [u32]) {
    assert_eq!(src.len(), dst.len(), "relu_fwd_mask length mismatch");
    assert_eq!(src.len(), mask.len(), "relu_fwd_mask mask length mismatch");
    dispatch!(relu_fwd_mask(src, dst, mask));
}

/// `dst[i] = mask[i] all-ones ? grad[i] : 0.0` (bitwise AND select).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn relu_bwd(grad: &[f32], mask: &[u32], dst: &mut [f32]) {
    assert_eq!(grad.len(), dst.len(), "relu_bwd length mismatch");
    assert_eq!(grad.len(), mask.len(), "relu_bwd mask length mismatch");
    dispatch!(relu_bwd(grad, mask, dst));
}

/// `dst[i] = a[i] + b[i]` — the residual-add primitive.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add(a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    assert_eq!(a.len(), dst.len(), "add output length mismatch");
    dispatch!(add(a, b, dst));
}

/// `y[i] += alpha * x[i]` (one multiply, one add per element — the
/// gradient-accumulation / SGD-update primitive).
///
/// Under the `fast-kernels` feature on an FMA-capable host with an
/// AVX2-or-wider active ISA, the multiply and add contract into a single
/// `fmadd` per element (see [`super::simd::fused_active`] and
/// `docs/DETERMINISM.md`); all other configurations keep the two separate
/// roundings of the seed.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(all(target_arch = "x86_64", feature = "fast-kernels"))]
    if super::simd::fused_for_isa(active_isa()) {
        // SAFETY: `fused_for_isa` only holds when the host's AVX2 and FMA
        // bits were detected; lengths are asserted above.
        unsafe { avx2_fma::axpy(alpha, x, y) };
        return;
    }
    dispatch!(axpy(alpha, x, y));
}

/// `dst[i] = src[i] * alpha`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn scale(src: &[f32], alpha: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "scale length mismatch");
    dispatch!(scale(src, alpha, dst));
}

/// Adds `bias` to every `bias.len()`-wide row of `data` in place — the
/// column-broadcast bias pass of the fused GEMM+bias kernel.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `bias.len()` or `bias` is
/// empty.
pub fn bias_add_rows(data: &mut [f32], bias: &[f32]) {
    assert!(!bias.is_empty(), "bias_add_rows: empty bias");
    assert_eq!(
        data.len() % bias.len(),
        0,
        "bias_add_rows: data not a whole number of rows"
    );
    dispatch!(bias_add_rows(data, bias));
}

#[cfg(test)]
mod tests {
    use super::super::simd::{force_isa, fused_active, isa_override_test_lock, supported_isas};
    use super::super::tolerance::{self, assert_bits_eq};
    use super::*;
    use crate::rng::SeededRng;

    /// Per-element magnitude scales of `y += alpha * x` for the one-step
    /// accumulation bound (`|alpha·x| + |y₀|`).
    fn axpy_scales(alpha: f32, x: &[f32], y0: &[f32]) -> Vec<f64> {
        x.iter()
            .zip(y0.iter())
            .map(|(&xv, &yv)| (f64::from(alpha) * f64::from(xv)).abs() + f64::from(yv).abs())
            .collect()
    }

    fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
        (0..len)
            .map(|_| {
                // Sprinkle exact zeros and negatives so the select/mask
                // paths are exercised, not just the generic arithmetic.
                if rng.bernoulli(0.15) {
                    0.0
                } else {
                    rng.uniform(-3.0, 3.0)
                }
            })
            .collect()
    }

    /// Remainder-heavy lengths: everything from empty through several full
    /// vectors plus every possible tail.
    const LENS: [usize; 12] = [0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 31, 67];

    /// Every elementwise kernel is bit-identical across every supported ISA
    /// (and the dispatched default), on remainder-heavy lengths.
    #[test]
    fn elementwise_kernels_bit_identical_across_isas() {
        let _lock = isa_override_test_lock();
        let mut rng = SeededRng::new(0x51_3D);
        for &n in &LENS {
            let src = random_vec(&mut rng, n);
            let other = random_vec(&mut rng, n);
            let alpha = rng.uniform(-2.0, 2.0);

            // Scalar reference results, via the scalar module directly so no
            // dispatch state can influence what the suite compares against.
            let mut fwd_ref = vec![f32::NAN; n];
            let mut mask_ref = vec![7u32; n];
            let mut fwd2_ref = vec![f32::NAN; n];
            scalar::relu_fwd(&src, &mut fwd_ref);
            scalar::relu_fwd_mask(&src, &mut fwd2_ref, &mut mask_ref);
            let mut bwd_ref = vec![f32::NAN; n];
            scalar::relu_bwd(&other, &mask_ref, &mut bwd_ref);
            let mut add_ref = vec![f32::NAN; n];
            scalar::add(&src, &other, &mut add_ref);
            let mut axpy_ref = src.clone();
            scalar::axpy(alpha, &other, &mut axpy_ref);
            let mut scale_ref = vec![f32::NAN; n];
            scalar::scale(&src, alpha, &mut scale_ref);

            let mut isa_modes: Vec<Option<crate::kernels::Isa>> =
                supported_isas().into_iter().map(Some).collect();
            isa_modes.push(None); // the dispatched default
            for mode in isa_modes {
                let prev = force_isa(mode);
                let fused = fused_active();
                let tag = format!("n={n} isa={mode:?}");
                let mut out = vec![f32::NAN; n];
                relu_fwd(&src, &mut out);
                assert_bits_eq(&out, &fwd_ref, &format!("{tag} relu_fwd"));
                let mut mask = vec![7u32; n];
                let mut out2 = vec![f32::NAN; n];
                relu_fwd_mask(&src, &mut out2, &mut mask);
                assert_bits_eq(&out2, &fwd_ref, &format!("{tag} relu_fwd_mask out"));
                assert_eq!(mask, mask_ref, "{tag} relu mask");
                let mut bwd = vec![f32::NAN; n];
                relu_bwd(&other, &mask, &mut bwd);
                assert_bits_eq(&bwd, &bwd_ref, &format!("{tag} relu_bwd"));
                let mut sum = vec![f32::NAN; n];
                add(&src, &other, &mut sum);
                assert_bits_eq(&sum, &add_ref, &format!("{tag} add"));
                let mut y = src.clone();
                axpy(alpha, &other, &mut y);
                if fused {
                    // Fused tier: one fma per element, within the one-step
                    // accumulation bound of the two-rounding reference.
                    tolerance::check_accumulation(
                        &y,
                        &axpy_ref,
                        &axpy_scales(alpha, &other, &src),
                        1,
                    )
                    .unwrap_or_else(|e| panic!("{tag} axpy (fused): {e}"));
                } else {
                    assert_bits_eq(&y, &axpy_ref, &format!("{tag} axpy"));
                }
                let mut sc = vec![f32::NAN; n];
                scale(&src, alpha, &mut sc);
                assert_bits_eq(&sc, &scale_ref, &format!("{tag} scale"));
                force_isa(prev);
            }
        }
    }

    /// The bias broadcast is bit-identical across ISAs for narrow and wide
    /// rows (tails within each row).
    #[test]
    fn bias_add_rows_bit_identical_across_isas() {
        let _lock = isa_override_test_lock();
        let mut rng = SeededRng::new(0xB1_A5);
        for &(rows, cols) in &[(1usize, 1usize), (3, 5), (4, 8), (5, 13), (2, 33)] {
            let base = random_vec(&mut rng, rows * cols);
            let bias = random_vec(&mut rng, cols);
            let mut expect = base.clone();
            scalar::bias_add_rows(&mut expect, &bias);
            for isa in supported_isas() {
                let prev = force_isa(Some(isa));
                let mut got = base.clone();
                bias_add_rows(&mut got, &bias);
                assert_bits_eq(&got, &expect, &format!("bias {rows}x{cols} {isa}"));
                force_isa(prev);
            }
        }
    }

    /// `fast-kernels` on an FMA host: the fused axpy must diverge from the
    /// mul-then-add reference somewhere across the sweep (or the tier is
    /// inert), while staying inside the one-step bound — and the unfused
    /// tier (forced off) must remain bit-identical to the seed.
    #[test]
    #[cfg(feature = "fast-kernels")]
    fn fused_axpy_diverges_within_one_step_bound() {
        use super::super::simd::{self, force_fused};
        let _lock = isa_override_test_lock();
        if !simd::fused_for_isa(crate::kernels::active_isa()) {
            eprintln!("skipping fused-axpy test: no FMA-capable backend on this host");
            return;
        }
        let mut rng = SeededRng::new(0xFA_AE);
        let mut diverging = 0usize;
        for &n in &[33usize, 64, 1027] {
            let x = random_vec(&mut rng, n);
            let y0 = random_vec(&mut rng, n);
            let alpha = rng.uniform(-2.0, 2.0);
            let mut reference = y0.clone();
            scalar::axpy(alpha, &x, &mut reference);

            let prev = force_fused(Some(false));
            let mut unfused = y0.clone();
            axpy(alpha, &x, &mut unfused);
            force_fused(Some(true));
            let mut fused = y0.clone();
            axpy(alpha, &x, &mut fused);
            force_fused(prev);

            assert_bits_eq(&unfused, &reference, &format!("n={n} axpy forced-off"));
            tolerance::check_accumulation(&fused, &reference, &axpy_scales(alpha, &x, &y0), 1)
                .unwrap_or_else(|e| panic!("n={n} fused axpy: {e}"));
            diverging += fused
                .iter()
                .zip(reference.iter())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
        }
        assert!(
            diverging > 0,
            "fused axpy never diverged from mul-then-add — FMA contraction \
             is not reaching the dispatched kernel"
        );
    }

    #[test]
    fn relu_semantics_on_special_values() {
        let src = [f32::NAN, -0.0, 0.0, -1.5, 2.5, f32::NEG_INFINITY];
        let mut out = [f32::NAN; 6];
        relu_fwd(&src, &mut out);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits(), "NaN clamps to +0.0");
        assert_eq!(out[1].to_bits(), 0.0f32.to_bits(), "-0.0 clamps to +0.0");
        assert_eq!(out[2].to_bits(), 0.0f32.to_bits());
        assert_eq!(out[3], 0.0);
        assert_eq!(out[4], 2.5);
        assert_eq!(out[5], 0.0);
    }

    #[test]
    fn relu_bwd_masks_negative_gradients_to_positive_zero() {
        // The masked-out lanes must be +0.0 even for negative gradients
        // (a multiply-by-mask implementation would yield -0.0).
        let grad = [-3.0f32, -4.0, 5.0];
        let mask = [0u32, u32::MAX, 0];
        let mut out = [f32::NAN; 3];
        relu_bwd(&grad, &mask, &mut out);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(out[1], -4.0);
        assert_eq!(out[2].to_bits(), 0.0f32.to_bits());
    }
}
