//! Explicit-SIMD backend: runtime ISA detection and the vectorized GEMM
//! microkernels.
//!
//! The autovectorized microkernel from the blocked-GEMM layer is at the mercy
//! of the compiler's loop vectorizer (and of whatever `-C target-cpu` the
//! binary was built with). This module takes that out of the compiler's
//! hands: a small portable `f32x8` abstraction (the `F32x8` trait) with SSE2 and AVX2
//! implementations, an AVX-512 widened microkernel, and a cached runtime
//! CPU-feature dispatch ([`active_isa`]) that picks the widest instruction
//! set the host actually supports — independent of how the binary was
//! compiled.
//!
//! # Determinism contract
//!
//! The kernel layer ships two numeric tiers (see `docs/DETERMINISM.md` and
//! [`super::numeric_contract`]):
//!
//! * **Default build — bit-identical-to-seed.** Every vector path performs,
//!   per output element, **exactly the same sequence of IEEE-754
//!   operations** as the scalar reference: lanes are independent output
//!   elements, products are accumulated in ascending inner-dimension order,
//!   and multiplication and addition stay separate instructions (`mulps` +
//!   `addps`, never `fmadd`). SIMD results are therefore bit-identical to
//!   the scalar kernels on every ISA — pinned by the equivalence suites,
//!   which re-run the kernels under every [`supported_isas`] entry.
//! * **`fast-kernels` build — deterministic-per-build.** The AVX2 and
//!   AVX-512 GEMM microkernels (and the elementwise `axpy`) additionally
//!   compile **fused multiply-add** variants, dispatched when the host's
//!   `fma` CPUID bit is set ([`fma_supported`]). Fusing removes the
//!   intermediate product rounding, so fused results are no longer
//!   bit-identical to the seed — they are instead pinned to a
//!   per-accumulation-step error bound by the tolerance suites
//!   (`super::tolerance`), and remain **bit-identical across runs, thread
//!   counts, and the fused backends themselves** on any one build
//!   (accumulation order never changes, and the AVX2 and AVX-512 fused
//!   kernels perform the identical per-element fma sequence). The scalar
//!   and SSE2 backends never fuse, so a `fast-kernels` build forced to
//!   either of them still reproduces the seed bit-for-bit.
//!
//! # Forcing a backend
//!
//! * `APPEALNET_FORCE_SCALAR=1` (environment, read once) pins detection to
//!   [`Isa::Scalar`] for the whole process — the CI fallback job uses this.
//! * [`force_isa`] installs a process-wide override at runtime (clamped to
//!   what the host supports); tests and benches use it to compare backends
//!   inside one process. On the default build all backends are
//!   bit-identical, so flipping the override concurrently with other work
//!   can only change speed, never results. Under `fast-kernels` the
//!   override additionally selects between the fused and unfused tiers
//!   (scalar/SSE2 vs AVX2/AVX-512), so tests that flip it while comparing
//!   results serialize on the same lock they already used.
//! * [`force_fused`] (meaningful only under `fast-kernels`) pins the fused
//!   tier on or off at runtime, so one process can measure and compare the
//!   FMA and mul-then-add kernels on identical inputs.
#![allow(unsafe_code)] // The one module allowed to use std::arch intrinsics.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use super::gemm::{MR, NR};

/// An instruction-set backend for the compute kernels, ordered from
/// narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Plain Rust loops (whatever the compiler autovectorizes them to).
    Scalar,
    /// 128-bit SSE2 vectors (baseline on every `x86_64`).
    Sse2,
    /// 256-bit AVX2 vectors.
    Avx2,
    /// 512-bit AVX-512F vectors (widened `8 x 16` GEMM microkernel).
    Avx512,
}

impl Isa {
    /// Short lowercase name, for reports and debug output.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    fn from_index(i: u8) -> Isa {
        match i {
            0 => Isa::Scalar,
            1 => Isa::Sse2,
            2 => Isa::Avx2,
            _ => Isa::Avx512,
        }
    }

    fn index(self) -> u8 {
        match self {
            Isa::Scalar => 0,
            Isa::Sse2 => 1,
            Isa::Avx2 => 2,
            Isa::Avx512 => 3,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `ISA_OVERRIDE` encoding: 0 = no override, otherwise `Isa::index() + 1`.
static ISA_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Widest ISA the host supports (respecting `APPEALNET_FORCE_SCALAR`),
/// detected once per process.
fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let forced_scalar =
            std::env::var("APPEALNET_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
        if forced_scalar {
            return Isa::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return Isa::Sse2;
            }
        }
        Isa::Scalar
    })
}

/// The ISA the kernels currently dispatch to: the [`force_isa`] override if
/// one is installed, otherwise the detected host maximum.
pub fn active_isa() -> Isa {
    match ISA_OVERRIDE.load(Ordering::Relaxed) {
        0 => detected_isa(),
        n => Isa::from_index(n - 1),
    }
}

/// Installs (or clears, with `None`) a process-wide ISA override and returns
/// the override that was previously in place.
///
/// The request is clamped to the detected host maximum — forcing AVX2 on a
/// host without it silently degrades to the widest supported backend, so the
/// kernels can never execute instructions the CPU lacks. Intended for tests
/// and benches. On the default build every backend is bit-identical, so a
/// concurrently flipped override can change performance but never results;
/// under `fast-kernels` the backend also selects the numeric tier (fused on
/// AVX2/AVX-512, unfused below), so result-comparing tests serialize on the
/// ISA test lock.
pub fn force_isa(isa: Option<Isa>) -> Option<Isa> {
    let encoded = match isa {
        None => 0,
        Some(req) => req.min(detected_isa()).index() + 1,
    };
    match ISA_OVERRIDE.swap(encoded, Ordering::Relaxed) {
        0 => None,
        n => Some(Isa::from_index(n - 1)),
    }
}

/// Every backend this host can run, narrowest first (always starts with
/// [`Isa::Scalar`]). Equivalence suites iterate this to pin bit-identity on
/// each dispatchable path.
pub fn supported_isas() -> Vec<Isa> {
    let max = detected_isa();
    [Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|isa| *isa <= max)
        .collect()
}

/// `true` when the active ISA has the widened `2*MR x NR` paired-strip GEMM
/// microkernel (AVX-512: eight 16-lane accumulator chains saturate both
/// 512-bit vector ports, which the `MR x NR` tile alone cannot).
pub(crate) fn has_paired_microkernel(isa: Isa) -> bool {
    cfg!(target_arch = "x86_64") && isa == Isa::Avx512
}

// ---------------------------------------------------------------------------
// The opt-in fused (FMA) tier.
// ---------------------------------------------------------------------------

/// Whether the host CPU advertises the FMA3 extension (cached; independent
/// of the ISA *width* detection above — AVX2 does not imply FMA).
fn fma_detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static FMA: OnceLock<bool> = OnceLock::new();
        *FMA.get_or_init(|| std::arch::is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// `FUSED_OVERRIDE` encoding: 0 = default (fused wherever available),
/// 1 = forced off, 2 = forced on (still clamped to availability).
static FUSED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `true` when this build carries the fused (FMA) kernel tier **and** the
/// host CPU can run it: requires the `fast-kernels` cargo feature and the
/// `fma` CPUID bit. When false, every kernel path is the unfused
/// bit-identical-to-seed tier regardless of [`force_fused`].
pub fn fma_supported() -> bool {
    cfg!(feature = "fast-kernels") && fma_detected()
}

/// Installs (or clears, with `None`) a process-wide override of the fused
/// tier and returns the previous override.
///
/// Only meaningful under `fast-kernels`: the default build has no fused
/// kernels compiled in, so the override is recorded but can never enable
/// anything ([`fused_for_isa`] clamps to [`fma_supported`]). Intended for
/// tests and benches that compare the FMA and mul-then-add kernels on
/// identical inputs in one process. Unlike [`force_isa`] on the default
/// build, flipping this concurrently with kernel work *does* change
/// results under `fast-kernels`; callers serialize on the ISA test lock.
pub fn force_fused(mode: Option<bool>) -> Option<bool> {
    let encoded = match mode {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    match FUSED_OVERRIDE.swap(encoded, Ordering::Relaxed) {
        0 => None,
        1 => Some(false),
        _ => Some(true),
    }
}

/// Whether kernels dispatched on `isa` use the fused (FMA) microkernels:
/// requires the `fast-kernels` build, a host with FMA, an AVX2-or-wider
/// backend (the scalar and SSE2 tiers never fuse), and no
/// [`force_fused`]`(Some(false))` override.
pub fn fused_for_isa(isa: Isa) -> bool {
    fma_supported() && isa >= Isa::Avx2 && FUSED_OVERRIDE.load(Ordering::Relaxed) != 1
}

/// Whether the *currently dispatched* kernels use the fused (FMA) tier —
/// i.e. [`fused_for_isa`] of [`active_isa`]. Surfaced so runtime debug
/// output (`EngineStats`) can attribute numbers to a numeric tier, not just
/// an ISA width.
pub fn fused_active() -> bool {
    fused_for_isa(active_isa())
}

// ---------------------------------------------------------------------------
// The portable 8-lane vector abstraction.
// ---------------------------------------------------------------------------

/// Eight `f32` lanes with the handful of operations the kernels need.
///
/// Implementations must be **lanewise IEEE-754 exact**: `add`/`mul` are the
/// plain (unfused) operations, `gt_zero_mask` yields all-ones/all-zeros lane
/// bit-masks from an ordered quiet `>` compare, and `load`/`store` preserve
/// bit patterns (including NaN payloads — masks travel through these
/// registers).
///
/// # Safety
///
/// `load`/`store` dereference raw pointers (8 lanes' worth), and every
/// method of a SIMD implementation must only be executed on hosts where the
/// corresponding CPU feature is available; [`active_isa`] guarantees this
/// for all dispatched calls.
pub(crate) trait F32x8: Copy {
    /// Loads 8 consecutive lanes from `ptr` (unaligned).
    ///
    /// # Safety
    ///
    /// `ptr..ptr+8` must be readable; the impl's CPU feature must be active.
    unsafe fn load(ptr: *const f32) -> Self;
    /// Stores 8 consecutive lanes to `ptr` (unaligned).
    ///
    /// # Safety
    ///
    /// `ptr..ptr+8` must be writable; the impl's CPU feature must be active.
    unsafe fn store(self, ptr: *mut f32);
    /// Broadcasts one value to all lanes.
    fn splat(v: f32) -> Self;
    /// Lanewise `self + other` (single IEEE addition per lane).
    fn add(self, other: Self) -> Self;
    /// Lanewise `self * other` (single IEEE multiplication per lane).
    fn mul(self, other: Self) -> Self;
    /// Lanewise `self > 0.0` as an all-ones/all-zeros bit mask
    /// (ordered, quiet: NaN lanes compare false).
    fn gt_zero_mask(self) -> Self;
    /// Lanewise bitwise AND.
    fn and(self, other: Self) -> Self;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{F32x8, MR, NR};
    use crate::quant::{BlockQ8_0, QK8_0};
    use std::arch::x86_64::*;

    /// SSE2 Q8_0 row dot: per block, widen the int8 lanes to int16 with a
    /// sign-mask unpack (`pmovsxbw` is SSE4.1, which the SSE2 baseline lacks),
    /// `pmaddwd` the halves into i32 lanes, horizontally sum, then combine in
    /// f32 exactly like the scalar reference. All integer arithmetic is exact
    /// (block dot `<= 32 * 127 * 127 < 2^24`), so lane order is irrelevant
    /// and the result is bit-identical to [`super::quant_row_dot_scalar`].
    ///
    /// # Safety
    ///
    /// Host must support SSE2 (always true on `x86_64`);
    /// `qa.len() >= blocks.len() * QK8_0`.
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn quant_row_dot_sse2(qa: &[i8], blocks: &[BlockQ8_0]) -> f32 {
        debug_assert!(qa.len() >= blocks.len() * QK8_0);
        let zero = _mm_setzero_si128();
        let mut acc = 0.0f32;
        for (b, block) in blocks.iter().enumerate() {
            let a_ptr = qa.as_ptr().add(b * QK8_0);
            let w_ptr = block.qs.as_ptr();
            let mut sum = _mm_setzero_si128();
            for half in 0..2 {
                let av = _mm_loadu_si128(a_ptr.add(half * 16) as *const __m128i);
                let wv = _mm_loadu_si128(w_ptr.add(half * 16) as *const __m128i);
                let a_sign = _mm_cmpgt_epi8(zero, av);
                let w_sign = _mm_cmpgt_epi8(zero, wv);
                let a_lo = _mm_unpacklo_epi8(av, a_sign);
                let a_hi = _mm_unpackhi_epi8(av, a_sign);
                let w_lo = _mm_unpacklo_epi8(wv, w_sign);
                let w_hi = _mm_unpackhi_epi8(wv, w_sign);
                sum = _mm_add_epi32(sum, _mm_madd_epi16(a_lo, w_lo));
                sum = _mm_add_epi32(sum, _mm_madd_epi16(a_hi, w_hi));
            }
            acc += block.scale * hsum_epi32_sse2(sum) as f32;
        }
        acc
    }

    /// Horizontal sum of four i32 lanes (exact).
    ///
    /// # Safety
    ///
    /// Host must support SSE2.
    #[inline(always)]
    unsafe fn hsum_epi32_sse2(v: __m128i) -> i32 {
        let hi64 = _mm_unpackhi_epi64(v, v);
        let s2 = _mm_add_epi32(v, hi64);
        let hi32 = _mm_shuffle_epi32::<0b01>(s2);
        _mm_cvtsi128_si32(_mm_add_epi32(s2, hi32))
    }

    /// AVX2 Q8_0 row dot: `vpmovsxbw` widens 16 int8 lanes at a time,
    /// `vpmaddwd` produces i32 pair sums, one horizontal reduction per block.
    /// Bit-identical to the scalar reference for the same reason as the SSE2
    /// path (exact integer arithmetic inside each block).
    ///
    /// # Safety
    ///
    /// Host must support AVX2; `qa.len() >= blocks.len() * QK8_0`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn quant_row_dot_avx2(qa: &[i8], blocks: &[BlockQ8_0]) -> f32 {
        debug_assert!(qa.len() >= blocks.len() * QK8_0);
        let mut acc = 0.0f32;
        for (b, block) in blocks.iter().enumerate() {
            let a_ptr = qa.as_ptr().add(b * QK8_0);
            let w_ptr = block.qs.as_ptr();
            let mut sum = _mm256_setzero_si256();
            for half in 0..2 {
                let av =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(a_ptr.add(half * 16) as *const __m128i));
                let wv =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(w_ptr.add(half * 16) as *const __m128i));
                sum = _mm256_add_epi32(sum, _mm256_madd_epi16(av, wv));
            }
            let lo = _mm256_castsi256_si128(sum);
            let hi = _mm256_extracti128_si256::<1>(sum);
            acc += block.scale * hsum_epi32_sse2(_mm_add_epi32(lo, hi)) as f32;
        }
        acc
    }

    /// Two SSE2 `__m128` halves acting as one 8-lane vector.
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2V(__m128, __m128);

    impl F32x8 for Sse2V {
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Sse2V(_mm_loadu_ps(ptr), _mm_loadu_ps(ptr.add(4)))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm_storeu_ps(ptr, self.0);
            _mm_storeu_ps(ptr.add(4), self.1);
        }

        #[inline(always)]
        fn splat(v: f32) -> Self {
            unsafe { Sse2V(_mm_set1_ps(v), _mm_set1_ps(v)) }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            unsafe { Sse2V(_mm_add_ps(self.0, other.0), _mm_add_ps(self.1, other.1)) }
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            unsafe { Sse2V(_mm_mul_ps(self.0, other.0), _mm_mul_ps(self.1, other.1)) }
        }

        #[inline(always)]
        fn gt_zero_mask(self) -> Self {
            unsafe {
                let z = _mm_setzero_ps();
                Sse2V(_mm_cmpgt_ps(self.0, z), _mm_cmpgt_ps(self.1, z))
            }
        }

        #[inline(always)]
        fn and(self, other: Self) -> Self {
            unsafe { Sse2V(_mm_and_ps(self.0, other.0), _mm_and_ps(self.1, other.1)) }
        }
    }

    /// One AVX2 `__m256`.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2V(__m256);

    impl F32x8 for Avx2V {
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Avx2V(_mm256_loadu_ps(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm256_storeu_ps(ptr, self.0);
        }

        #[inline(always)]
        fn splat(v: f32) -> Self {
            unsafe { Avx2V(_mm256_set1_ps(v)) }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            unsafe { Avx2V(_mm256_add_ps(self.0, other.0)) }
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            unsafe { Avx2V(_mm256_mul_ps(self.0, other.0)) }
        }

        #[inline(always)]
        fn gt_zero_mask(self) -> Self {
            unsafe { Avx2V(_mm256_cmp_ps::<_CMP_GT_OQ>(self.0, _mm256_setzero_ps())) }
        }

        #[inline(always)]
        fn and(self, other: Self) -> Self {
            unsafe { Avx2V(_mm256_and_ps(self.0, other.0)) }
        }
    }

    /// The generic `MR x NR` microkernel inner loop over a packed A strip and
    /// B strip: `acc[r][c] += a[p][r] * b[p][c]` for every `p` in ascending
    /// order, with the whole accumulator tile held in `MR * NR / 8` vector
    /// registers. Lanes are independent output elements, so this is
    /// bit-identical to the scalar loop.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `V`'s CPU feature is active and the slice
    /// layout invariants of the packed panels (`a_tile.len() >= kc * MR`,
    /// `b_tile.len() >= kc * NR`).
    #[inline(always)]
    unsafe fn microkernel_4x16<V: F32x8>(
        kc: usize,
        a_tile: &[f32],
        b_tile: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        debug_assert!(a_tile.len() >= kc * MR && b_tile.len() >= kc * NR);
        let mut c: [[V; 2]; MR] = [[V::splat(0.0); 2]; MR];
        for (r, row) in acc.iter().enumerate() {
            c[r][0] = V::load(row.as_ptr());
            c[r][1] = V::load(row.as_ptr().add(8));
        }
        let a = a_tile.as_ptr();
        let b = b_tile.as_ptr();
        for p in 0..kc {
            let b0 = V::load(b.add(p * NR));
            let b1 = V::load(b.add(p * NR + 8));
            for (r, cr) in c.iter_mut().enumerate() {
                let av = V::splat(*a.add(p * MR + r));
                cr[0] = cr[0].add(av.mul(b0));
                cr[1] = cr[1].add(av.mul(b1));
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            c[r][0].store(row.as_mut_ptr());
            c[r][1].store(row.as_mut_ptr().add(8));
        }
    }

    /// SSE2 instantiation of the `MR x NR` microkernel loop.
    ///
    /// # Safety
    ///
    /// Host must support SSE2 (always true on `x86_64`); packed-panel layout
    /// invariants as in [`microkernel_4x16`].
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn microkernel_4x16_sse2(
        kc: usize,
        a_tile: &[f32],
        b_tile: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        microkernel_4x16::<Sse2V>(kc, a_tile, b_tile, acc);
    }

    /// AVX2 instantiation of the `MR x NR` microkernel loop.
    ///
    /// # Safety
    ///
    /// Host must support AVX2; packed-panel layout invariants as in
    /// [`microkernel_4x16`].
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn microkernel_4x16_avx2(
        kc: usize,
        a_tile: &[f32],
        b_tile: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        microkernel_4x16::<Avx2V>(kc, a_tile, b_tile, acc);
    }

    /// AVX-512 paired-strip microkernel: two vertically adjacent `MR`-row A
    /// strips against one `NR`-column B strip, i.e. a `2*MR x NR` tile with
    /// one 16-lane `zmm` accumulator per row. Eight independent
    /// multiply-then-add chains keep both 512-bit vector ports busy despite
    /// the 4-cycle add latency the ordered accumulation imposes.
    ///
    /// Per element this is still `acc += a[p] * b[p]` in ascending `p` order
    /// — bit-identical to the scalar kernel.
    ///
    /// # Safety
    ///
    /// Host must support AVX-512F; `a_lo`/`a_hi` must each hold `kc * MR`
    /// packed values and `b_tile` must hold `kc * NR`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::needless_range_loop)] // indices mirror the zmm register layout
    pub(crate) unsafe fn microkernel_8x16_avx512(
        kc: usize,
        a_lo: &[f32],
        a_hi: &[f32],
        b_tile: &[f32],
        acc: &mut [[f32; NR]; 2 * MR],
    ) {
        debug_assert!(a_lo.len() >= kc * MR && a_hi.len() >= kc * MR);
        debug_assert!(b_tile.len() >= kc * NR);
        let mut c: [__m512; 2 * MR] = [_mm512_setzero_ps(); 2 * MR];
        for (r, row) in acc.iter().enumerate() {
            c[r] = _mm512_loadu_ps(row.as_ptr());
        }
        let alo = a_lo.as_ptr();
        let ahi = a_hi.as_ptr();
        let b = b_tile.as_ptr();
        for p in 0..kc {
            let bv = _mm512_loadu_ps(b.add(p * NR));
            for r in 0..MR {
                let av = _mm512_set1_ps(*alo.add(p * MR + r));
                c[r] = _mm512_add_ps(c[r], _mm512_mul_ps(av, bv));
            }
            for r in 0..MR {
                let av = _mm512_set1_ps(*ahi.add(p * MR + r));
                c[MR + r] = _mm512_add_ps(c[MR + r], _mm512_mul_ps(av, bv));
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(row.as_mut_ptr(), c[r]);
        }
    }

    /// The fused (FMA) kernel tier, compiled only under `fast-kernels`.
    ///
    /// Each kernel is the exact loop structure of its unfused sibling with
    /// the `mul` + `add` pair contracted into one `fmadd` — same ascending
    /// `p` accumulation order, same lane-to-element mapping, one rounding
    /// per step instead of two. The AVX2 and AVX-512 variants therefore
    /// perform the *identical* per-element operation sequence and are
    /// bit-identical to each other (pinned by the cross-ISA suites), while
    /// both differ from the seed within the `super::super::tolerance`
    /// accumulation bound.
    #[cfg(feature = "fast-kernels")]
    pub(crate) mod fused {
        use super::{MR, NR};
        use std::arch::x86_64::*;

        /// FMA contraction of [`super::microkernel_4x16_avx2`].
        ///
        /// # Safety
        ///
        /// Host must support AVX2 **and** FMA; packed-panel layout
        /// invariants as in the unfused kernel.
        #[target_feature(enable = "avx2,fma")]
        pub(crate) unsafe fn microkernel_4x16_avx2_fma(
            kc: usize,
            a_tile: &[f32],
            b_tile: &[f32],
            acc: &mut [[f32; NR]; MR],
        ) {
            debug_assert!(a_tile.len() >= kc * MR && b_tile.len() >= kc * NR);
            let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
            for (r, row) in acc.iter().enumerate() {
                c[r][0] = _mm256_loadu_ps(row.as_ptr());
                c[r][1] = _mm256_loadu_ps(row.as_ptr().add(8));
            }
            let a = a_tile.as_ptr();
            let b = b_tile.as_ptr();
            for p in 0..kc {
                let b0 = _mm256_loadu_ps(b.add(p * NR));
                let b1 = _mm256_loadu_ps(b.add(p * NR + 8));
                for (r, cr) in c.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*a.add(p * MR + r));
                    cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                    cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
                }
            }
            for (r, row) in acc.iter_mut().enumerate() {
                _mm256_storeu_ps(row.as_mut_ptr(), c[r][0]);
                _mm256_storeu_ps(row.as_mut_ptr().add(8), c[r][1]);
            }
        }

        /// FMA contraction of [`super::microkernel_8x16_avx512`].
        ///
        /// # Safety
        ///
        /// Host must support AVX-512F (whose zmm `fmadd` this uses; dispatch
        /// additionally gates on the `fma` CPUID bit for tier uniformity);
        /// `a_lo`/`a_hi` must each hold `kc * MR` packed values and
        /// `b_tile` must hold `kc * NR`.
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::needless_range_loop)] // indices mirror the zmm register layout
        pub(crate) unsafe fn microkernel_8x16_avx512_fma(
            kc: usize,
            a_lo: &[f32],
            a_hi: &[f32],
            b_tile: &[f32],
            acc: &mut [[f32; NR]; 2 * MR],
        ) {
            debug_assert!(a_lo.len() >= kc * MR && a_hi.len() >= kc * MR);
            debug_assert!(b_tile.len() >= kc * NR);
            let mut c: [__m512; 2 * MR] = [_mm512_setzero_ps(); 2 * MR];
            for (r, row) in acc.iter().enumerate() {
                c[r] = _mm512_loadu_ps(row.as_ptr());
            }
            let alo = a_lo.as_ptr();
            let ahi = a_hi.as_ptr();
            let b = b_tile.as_ptr();
            for p in 0..kc {
                let bv = _mm512_loadu_ps(b.add(p * NR));
                for r in 0..MR {
                    let av = _mm512_set1_ps(*alo.add(p * MR + r));
                    c[r] = _mm512_fmadd_ps(av, bv, c[r]);
                }
                for r in 0..MR {
                    let av = _mm512_set1_ps(*ahi.add(p * MR + r));
                    c[MR + r] = _mm512_fmadd_ps(av, bv, c[MR + r]);
                }
            }
            for (r, row) in acc.iter_mut().enumerate() {
                _mm512_storeu_ps(row.as_mut_ptr(), c[r]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{Avx2V, Sse2V};

// ---------------------------------------------------------------------------
// Scalar microkernel (the reference) and the safe dispatchers the blocked
// GEMM driver calls.
// ---------------------------------------------------------------------------

/// The scalar (autovectorized) `MR x NR` microkernel loop — the
/// `Isa::Scalar` backend and the reference every SIMD backend must match
/// bit-for-bit. Kept as its own compilation unit (`inline(never)`) so the
/// loop vectorizer reliably promotes the whole accumulator tile into SIMD
/// registers; one call per tile per slab is amortized over `kc * MR * NR`
/// multiply-accumulates.
#[inline(never)]
fn microkernel_4x16_scalar(kc: usize, a_tile: &[f32], b_tile: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut tile = *acc;
    // Eight `p` steps per iteration to amortize loop overhead; the steps stay
    // strictly sequential per accumulator, preserving accumulation order.
    const U: usize = 8;
    let quads = kc / U;
    for (ap, bp) in a_tile[..quads * U * MR]
        .chunks_exact(U * MR)
        .zip(b_tile[..quads * U * NR].chunks_exact(U * NR))
    {
        for u in 0..U {
            scalar_micro_step(
                &mut tile,
                &ap[u * MR..(u + 1) * MR],
                &bp[u * NR..(u + 1) * NR],
            );
        }
    }
    for p in quads * U..kc {
        scalar_micro_step(
            &mut tile,
            &a_tile[p * MR..(p + 1) * MR],
            &b_tile[p * NR..(p + 1) * NR],
        );
    }
    *acc = tile;
}

/// One `p` step of the scalar microkernel: `tile[r][c] += a[r] * b[c]`.
#[inline(always)]
fn scalar_micro_step(tile: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    let ap: &[f32; MR] = ap.try_into().expect("MR-sized A strip");
    let bp: &[f32; NR] = bp.try_into().expect("NR-sized B strip");
    for (r, acc_row) in tile.iter_mut().enumerate() {
        let av = ap[r];
        for c in 0..NR {
            acc_row[c] += av * bp[c];
        }
    }
}

/// Runs the `MR x NR` microkernel inner loop on the backend for `isa`:
/// `acc[r][c] += a_tile[p*MR+r] * b_tile[p*NR+c]` for every `p` ascending.
///
/// `fused` selects the FMA tier (one rounding per step); callers resolve it
/// **once per `gemm_into` call** via [`fused_for_isa`] — shared by all row
/// bands of the parallel path — so every tile of one GEMM
/// uses the same tier. It may only be true when [`fused_for_isa`]`(isa)` is
/// — i.e. on an AVX2-or-wider backend of a `fast-kernels` build on an FMA
/// host. All unfused backends are bit-identical; the fused ones are
/// bit-identical to each other.
///
/// # Panics
///
/// Debug-asserts that the packed panels hold at least `kc` steps.
#[cfg_attr(
    not(all(target_arch = "x86_64", feature = "fast-kernels")),
    allow(unused_variables)
)]
pub(crate) fn microkernel_4x16(
    isa: Isa,
    fused: bool,
    kc: usize,
    a_tile: &[f32],
    b_tile: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(a_tile.len() >= kc * MR && b_tile.len() >= kc * NR);
    debug_assert!(!fused || fused_for_isa(isa), "fused tier without FMA");
    #[cfg(all(target_arch = "x86_64", feature = "fast-kernels"))]
    if fused {
        // SAFETY: `fused` is only set when `fused_for_isa` confirmed the
        // host's FMA and AVX2 bits; panel sizes are asserted above.
        return unsafe { x86::fused::microkernel_4x16_avx2_fma(kc, a_tile, b_tile, acc) };
    }
    match isa {
        Isa::Scalar => microkernel_4x16_scalar(kc, a_tile, b_tile, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` comes from `active_isa`, which only reports CPU
        // features the host has, and the panel sizes are asserted above.
        Isa::Sse2 => unsafe { x86::microkernel_4x16_sse2(kc, a_tile, b_tile, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; AVX-512 hosts always have AVX2 (odd strips on
        // the paired path land here).
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::microkernel_4x16_avx2(kc, a_tile, b_tile, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => microkernel_4x16_scalar(kc, a_tile, b_tile, acc),
    }
}

/// Runs the widened `2*MR x NR` paired-strip microkernel. Only callable on
/// ISAs for which [`has_paired_microkernel`] is true (AVX-512). `fused`
/// follows the same once-per-blocked-call resolution rule as
/// [`microkernel_4x16`].
///
/// # Panics
///
/// Panics (via `unreachable!`) if no paired backend exists on this target.
#[allow(unused_variables)]
pub(crate) fn microkernel_8x16(
    fused: bool,
    kc: usize,
    a_lo: &[f32],
    a_hi: &[f32],
    b_tile: &[f32],
    acc: &mut [[f32; NR]; 2 * MR],
) {
    debug_assert!(a_lo.len() >= kc * MR && a_hi.len() >= kc * MR);
    debug_assert!(b_tile.len() >= kc * NR);
    #[cfg(all(target_arch = "x86_64", feature = "fast-kernels"))]
    if fused {
        // SAFETY: the blocked driver only takes the paired path on AVX-512
        // hosts and only sets `fused` per `fused_for_isa`; sizes asserted.
        return unsafe { x86::fused::microkernel_8x16_avx512_fma(kc, a_lo, a_hi, b_tile, acc) };
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the blocked driver only takes this path when `active_isa`
    // reported AVX-512; panel sizes are asserted above.
    unsafe {
        x86::microkernel_8x16_avx512(kc, a_lo, a_hi, b_tile, acc)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("paired microkernel is x86_64-only");
}

// ---------------------------------------------------------------------------
// Q8_0 int8 row-dot kernels (the quantized GEMM's inner loop).
// ---------------------------------------------------------------------------

/// The scalar Q8_0 row dot — the reference every SIMD path must match
/// bit-for-bit: per block, an exact int8×int8→i32 dot product (bounded by
/// `32 * 127² < 2^24`, so the i32→f32 conversion is exact), combined as
/// `acc += scale * dot` in ascending block order. The combine deliberately
/// stays a separate `mul` + `add` in every backend and both build tiers —
/// the quantized path has a *single* numeric contract
/// (`quantized-tolerance`), not a fused variant.
fn quant_row_dot_scalar(qa: &[i8], blocks: &[crate::quant::BlockQ8_0]) -> f32 {
    use crate::quant::QK8_0;
    let mut acc = 0.0f32;
    for (b, block) in blocks.iter().enumerate() {
        let a = &qa[b * QK8_0..(b + 1) * QK8_0];
        let mut dot = 0i32;
        for (x, w) in a.iter().zip(block.qs.iter()) {
            dot += i32::from(*x) * i32::from(*w);
        }
        acc += block.scale * dot as f32;
    }
    acc
}

/// Dot product of a quantized activation row against one reduction row of a
/// [`crate::quant::QuantMatrix`], dispatched on `isa` (resolved once per
/// GEMM by the caller). AVX-512 hosts use the AVX2 path — with 32-element
/// blocks the reduction is latency-bound, not width-bound, mirroring the f32
/// kernel's 4x16 fallback for odd strips.
///
/// # Panics
///
/// Panics if `qa` is shorter than `blocks.len() * QK8_0`.
#[cfg_attr(not(target_arch = "x86_64"), allow(unreachable_patterns))]
pub(crate) fn quant_row_dot(isa: Isa, qa: &[i8], blocks: &[crate::quant::BlockQ8_0]) -> f32 {
    assert!(
        qa.len() >= blocks.len() * crate::quant::QK8_0,
        "quantized activation row shorter than the weight row"
    );
    match isa {
        Isa::Scalar => quant_row_dot_scalar(qa, blocks),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` comes from `active_isa` (host-clamped) and the row
        // length is asserted above.
        Isa::Sse2 => unsafe { x86::quant_row_dot_sse2(qa, blocks) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; AVX-512 hosts always support AVX2.
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::quant_row_dot_avx2(qa, blocks) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => quant_row_dot_scalar(qa, blocks),
    }
}

/// Serializes tests that install [`force_isa`] or [`force_fused`]
/// overrides. The overrides are process-global; without this, concurrently
/// running tests could observe each other's overrides (on the default build
/// every backend is bit-identical, so results could never be corrupted —
/// but a test could end up comparing a backend against itself, weakening
/// what it proves; under `fast-kernels` the overrides select the numeric
/// tier, so an unserialized flip could corrupt a concurrent comparison).
/// Recovers from poisoning: a panicked ISA test must not cascade.
#[cfg(test)]
pub(crate) fn isa_override_test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_ordering_and_names() {
        assert!(Isa::Scalar < Isa::Sse2);
        assert!(Isa::Sse2 < Isa::Avx2);
        assert!(Isa::Avx2 < Isa::Avx512);
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(format!("{}", Isa::Scalar), "scalar");
    }

    #[test]
    fn supported_isas_starts_with_scalar_and_is_sorted() {
        let _lock = isa_override_test_lock();
        let isas = supported_isas();
        assert_eq!(isas[0], Isa::Scalar);
        assert!(isas.windows(2).all(|w| w[0] < w[1]));
        // The override is always clamped to a supported ISA, so the active
        // ISA is supported whether or not one is installed.
        assert!(isas.contains(&active_isa()));
    }

    #[test]
    fn force_fused_round_trips_and_clamps_to_availability() {
        let _lock = isa_override_test_lock();
        let prev = force_fused(Some(true));
        // Forcing the tier on can never enable it beyond what the build and
        // host provide.
        assert_eq!(fused_active(), fma_supported() && active_isa() >= Isa::Avx2);
        let back = force_fused(Some(false));
        assert_eq!(back, Some(true));
        assert!(!fused_active(), "forced-off tier must never fuse");
        let back = force_fused(prev);
        assert_eq!(back, Some(false));
    }

    #[test]
    fn fused_tier_requires_avx2_or_wider() {
        let _lock = isa_override_test_lock();
        assert!(!fused_for_isa(Isa::Scalar));
        assert!(!fused_for_isa(Isa::Sse2));
        // Without the feature the tier is off for every ISA.
        if !cfg!(feature = "fast-kernels") {
            assert!(!fused_for_isa(Isa::Avx2) && !fused_for_isa(Isa::Avx512));
            assert!(!fma_supported() && !fused_active());
        }
    }

    #[test]
    fn quant_row_dot_is_bit_identical_on_every_isa() {
        use crate::quant::{quantize_f32, QK8_0};
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(88);
        for blocks_n in [1usize, 2, 5] {
            let w: Vec<f32> = (0..blocks_n * QK8_0)
                .map(|_| rng.uniform(-2.0, 2.0))
                .collect();
            let blocks = quantize_f32(&w);
            let qa: Vec<i8> = (0..blocks_n * QK8_0)
                .map(|_| (rng.below(255) as i32 - 127) as i8)
                .collect();
            let want = quant_row_dot_scalar(&qa, &blocks);
            for isa in supported_isas() {
                let got = quant_row_dot(isa, &qa, &blocks);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "quant dot diverges on {isa} ({got:e} vs {want:e})"
                );
            }
        }
    }

    #[test]
    fn force_isa_round_trips_and_clamps() {
        let _lock = isa_override_test_lock();
        let prev = force_isa(Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        let back = force_isa(prev);
        assert_eq!(back, Some(Isa::Scalar));
        // A forced ISA never exceeds what the host supports.
        let widest = *supported_isas().last().unwrap();
        let prev = force_isa(Some(Isa::Avx512));
        assert!(active_isa() <= widest);
        force_isa(prev);
    }
}
