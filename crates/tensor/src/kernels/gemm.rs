//! Cache-blocked, register-tiled GEMM.
//!
//! The kernel follows the classic GotoBLAS/BLIS decomposition: the output is
//! computed in `MC x NC` macro-tiles, the `K` dimension is consumed in `KC`
//! slabs whose operands are packed into contiguous panels (`MR`-row strips of
//! A, `NR`-column strips of B), and an `MR x NR` register-tiled microkernel
//! performs the innermost multiply-accumulate with all `MR * NR` partial sums
//! held in registers.
//!
//! The microkernel dispatches onto the explicit-SIMD backend in
//! [`super::simd`]: SSE2 and AVX2 instantiations of the `MR x NR` tile, and
//! on AVX-512 hosts a widened `2*MR x NR` paired-strip kernel (eight 16-lane
//! accumulator chains, enough independent adds to saturate both 512-bit
//! vector ports). [`super::simd::active_isa`] picks the backend at runtime;
//! the scalar microkernel remains the `Isa::Scalar` fallback and the
//! reference all backends must match bit-for-bit.
//!
//! # Determinism contract
//!
//! Every path in this module accumulates each output element's products in
//! strictly increasing `p` (inner-dimension) order, starting from the
//! element's initial value ([`GemmInit`]): the `KC` slabs are processed in
//! ascending order and the microkernel reloads/stores the output tile at slab
//! boundaries rather than reassociating partial sums. Since Rust never
//! contracts `a * b + c` into a fused multiply-add on its own, the blocked
//! kernel, the small-problem fallback and the rayon row-parallel path are all
//! **bit-identical** to the naive `i-k-j` triple loop (see
//! [`super::naive::matmul_naive`]) on the default build — which is what
//! keeps serving results byte-stable across kernel choices and thread
//! counts.
//!
//! Under the opt-in `fast-kernels` feature the *full* `MR x NR` (and
//! paired `2*MR x NR`) tiles dispatch onto fused-multiply-add microkernels
//! when the host supports FMA ([`super::simd::fused_for_isa`], resolved
//! once per `gemm_into` call and shared by all row bands of the parallel
//! path, so one GEMM never mixes tiers mid-stream). The
//! accumulation order is unchanged — only the per-step rounding count drops
//! from two to one — so results remain bit-identical across thread counts
//! and runs of one build, and tolerance-bounded against the seed (the
//! `deterministic-per-build` contract; see `docs/DETERMINISM.md`). Edge
//! tiles and the small-problem `i-k-j` path keep separate mul+add in both
//! tiers: they cover O(edge) of the work, and keeping them unfused means a
//! problem small enough to skip blocking reproduces the seed exactly even
//! on a `fast-kernels` build.

use super::scratch::PackScratch;
use super::simd::{self, Isa};

/// Rows of the register microkernel tile. With [`NR`]` = 16` the `MR x NR`
/// accumulator block is 8 `ymm` registers (16 on the paired AVX-512 path's
/// `2*MR x NR` tile, one `zmm` per row) — small enough to leave registers
/// for the A broadcasts and B loads on every backend down to SSE2.
pub const MR: usize = 4;
/// Columns of the register microkernel tile: two 8-lane vectors per row
/// (one 16-lane vector on AVX-512), matching the widest `f32x8`/`f32x16`
/// strips the SIMD backends load per step.
pub const NR: usize = 16;
/// Rows of A packed per macro-block (multiple of [`MR`]). An
/// `MC x KC` A panel is 32 KiB — half a typical L1d — so the strip the
/// microkernel streams stays L1-resident against the L2-resident B panel.
pub const MC: usize = 64;
/// Depth consumed per packed slab (the `p`-extent of both panels). Chosen
/// so panel height amortizes the pack cost while `KC * NR` B strips
/// (8 KiB) stay comfortably cached; slabs also bound how long the
/// microkernel holds a tile before the determinism contract's
/// reload/store at slab boundaries.
pub const KC: usize = 128;
/// Columns of B packed per macro-block (multiple of [`NR`]). A `KC x NC`
/// B panel is 128 KiB — sized for L2 so every A strip of the macro-block
/// reuses it without refetching from L3/memory.
pub const NC: usize = 256;

/// Problems with fewer multiply-accumulates than this skip packing entirely
/// and run the plain `i-k-j` loop (bit-identical, lower overhead).
const SMALL_PROBLEM_MACS: usize = 32 * 1024;

/// Minimum multiply-accumulates before the row-parallel path is worthwhile.
const PAR_MIN_MACS: usize = 1 << 21;

/// How an output element starts before the `A x B` products are accumulated.
#[derive(Clone, Copy)]
pub enum GemmInit<'a> {
    /// `out = A x B`: elements start at `0.0`.
    Zero,
    /// `out += A x B`: elements keep their current value (gradient
    /// accumulation).
    Accumulate,
    /// `out[i][j]` starts at `bias[i]` — the convolution-forward convention,
    /// where the naive kernel seeds its accumulator with the output-channel
    /// bias *before* the taps.
    RowBias(&'a [f32]),
}

/// `out[m x n] <- init ⊕ a[m x k] x b[k x n]`, all row-major slices.
///
/// Dispatches between the small-problem `i-k-j` loop, the serial blocked
/// kernel and the rayon row-parallel blocked kernel; all three produce
/// bit-identical results (see the module docs). `packs` supplies the packing
/// panels for the serial blocked path; the parallel path packs into
/// per-worker buffers instead (worker threads are transient).
///
/// # Panics
///
/// Panics if a slice length does not match its `m`/`k`/`n` dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    init: GemmInit<'_>,
    out: &mut [f32],
    packs: &mut PackScratch,
) {
    assert_eq!(a.len(), m * k, "gemm: A must be m*k");
    assert_eq!(b.len(), k * n, "gemm: B must be k*n");
    assert_eq!(out.len(), m * n, "gemm: out must be m*n");
    if let GemmInit::RowBias(bias) = init {
        assert_eq!(bias.len(), m, "gemm: row bias must have m entries");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        init_only(m, n, init, out);
        return;
    }
    let macs = m * k * n;
    if macs <= SMALL_PROBLEM_MACS {
        gemm_ikj(m, k, n, a, b, init, out);
        return;
    }
    // Resolve the SIMD backend and numeric tier once per gemm_into call, so
    // every tile of this GEMM — across all row bands of the parallel path —
    // uses the same kernel even if an override flips mid-call.
    let isa = simd::active_isa();
    let fused = simd::fused_for_isa(isa);
    let threads = rayon::current_num_threads();
    // Stay serial inside an outer parallel region (sharded batch workers):
    // the batch is already parallel at that level, so splitting each
    // per-sample GEMM again would only add queueing overhead on the shared
    // worker pool.
    if threads > 1 && macs >= PAR_MIN_MACS && m >= 2 * MR && !super::scratch::in_worker_region() {
        gemm_parallel(isa, fused, m, k, n, a, b, init, out, threads, packs);
    } else {
        gemm_blocked(isa, fused, m, k, n, a, b, init, out, packs);
    }
}

/// Degenerate `k == 0` case: the "product" contributes nothing, only the
/// initialization is applied.
fn init_only(_m: usize, n: usize, init: GemmInit<'_>, out: &mut [f32]) {
    match init {
        GemmInit::Zero => out.fill(0.0),
        GemmInit::Accumulate => {}
        GemmInit::RowBias(bias) => {
            for (row, &bv) in out.chunks_exact_mut(n).zip(bias.iter()) {
                row.fill(bv);
            }
        }
    }
}

/// Plain `i-k-j` loop: walks B rows and the output row contiguously. This is
/// the seed kernel minus its `a == 0.0` sparsity branch (which pessimized
/// dense data and is bit-equivalent to just accumulating for finite inputs).
fn gemm_ikj(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    init: GemmInit<'_>,
    out: &mut [f32],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        match init {
            GemmInit::Zero => out_row.fill(0.0),
            GemmInit::Accumulate => {}
            GemmInit::RowBias(bias) => out_row.fill(bias[i]),
        }
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Splits the rows of the output across worker threads; each worker runs the
/// serial blocked kernel on its contiguous row band. Bands never overlap, so
/// no synchronization is needed and each element's accumulation order is
/// unchanged.
///
/// The first band runs on the calling thread with the caller's (reused)
/// packing scratch; each spawned band checks the [`PackScratch`] slot keyed
/// by its band index out of the shared band pool
/// ([`super::scratch::with_band_packs`]) and returns it afterwards. Band
/// `b` always reuses arena `b`, so a steady state of multi-band GEMMs
/// performs **zero** packing allocations — deterministically, regardless of
/// which persistent pool worker picks up which band (pinned by
/// `tests/hot_path_allocations.rs`).
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    isa: Isa,
    fused: bool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    init: GemmInit<'_>,
    out: &mut [f32],
    threads: usize,
    packs: &mut PackScratch,
) {
    // Band size: a multiple of MR so microkernel tiling stays aligned.
    let bands = threads.min(m.div_ceil(MR));
    let rows_per = m.div_ceil(bands).next_multiple_of(MR);
    let mut row0 = 0usize;
    let mut jobs: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(bands);
    let mut rest = out;
    while row0 < m {
        let rows = rows_per.min(m - row0);
        let (band, tail) = rest.split_at_mut(rows * n);
        jobs.push((row0, rows, band));
        rest = tail;
        row0 += rows;
    }
    let band_slice = |band_row0: usize, rows: usize| {
        let band_a = &a[band_row0 * k..(band_row0 + rows) * k];
        let band_init = match init {
            GemmInit::RowBias(bias) => GemmInit::RowBias(&bias[band_row0..band_row0 + rows]),
            other => other,
        };
        (band_a, band_init)
    };
    let mut jobs = jobs.into_iter();
    let first = jobs.next();
    rayon::scope(|s| {
        for (band, (band_row0, rows, band_out)) in jobs.enumerate() {
            s.spawn(move |_| {
                let (band_a, band_init) = band_slice(band_row0, rows);
                super::scratch::with_band_packs(band, |packs| {
                    gemm_blocked(
                        isa, fused, rows, k, n, band_a, b, band_init, band_out, packs,
                    );
                });
            });
        }
        // The scope body runs on the calling thread: do the first band here
        // with the caller's scratch while the spawned bands proceed.
        if let Some((band_row0, rows, band_out)) = first {
            let (band_a, band_init) = band_slice(band_row0, rows);
            gemm_blocked(
                isa, fused, rows, k, n, band_a, b, band_init, band_out, packs,
            );
        }
    });
}

/// Serial blocked kernel: `NC`-column macro-blocks, `KC`-deep packed slabs,
/// `MC`-row packed A panels, `MR x NR` register microkernel.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    isa: Isa,
    fused: bool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    init: GemmInit<'_>,
    out: &mut [f32],
    packs: &mut PackScratch,
) {
    // The backend and numeric tier come resolved from `gemm_into`; the
    // microkernel dispatches branch-predictably per tile.
    let pair = simd::has_paired_microkernel(isa);
    let a_panel_len = MC.div_ceil(MR) * MR * KC;
    let b_panel_len = NC.div_ceil(NR) * NR * KC;
    let mut jc = 0;
    while jc < n {
        let ncb = NC.min(n - jc);
        let j_tiles = ncb.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kcb = KC.min(k - pc);
            let first_slab = pc == 0;
            let b_pack = packs.b.take(b_panel_len);
            pack_b(b, n, pc, kcb, jc, ncb, b_pack);
            let mut ic = 0;
            while ic < m {
                let mcb = MC.min(m - ic);
                let i_tiles = mcb.div_ceil(MR);
                let a_pack = packs.a.take(a_panel_len);
                pack_a(a, k, ic, mcb, pc, kcb, a_pack);
                for jt in 0..j_tiles {
                    let j0 = jc + jt * NR;
                    let ncols = NR.min(n - j0);
                    let b_tile = &b_pack[jt * kcb * NR..(jt + 1) * kcb * NR];
                    let mut it = 0;
                    while it < i_tiles {
                        let i0 = ic + it * MR;
                        let mrows = MR.min(m - i0);
                        let a_tile = &a_pack[it * kcb * MR..(it + 1) * kcb * MR];
                        if pair
                            && ncols == NR
                            && mrows == MR
                            && it + 1 < i_tiles
                            && m - (i0 + MR) >= MR
                        {
                            // Two vertically adjacent full strips: the
                            // widened 2*MR x NR AVX-512 kernel.
                            let a_hi = &a_pack[(it + 1) * kcb * MR..(it + 2) * kcb * MR];
                            micro_kernel_full_pair(
                                fused, kcb, a_tile, a_hi, b_tile, init, first_slab, i0, j0, n, out,
                            );
                            it += 2;
                            continue;
                        }
                        if mrows == MR && ncols == NR {
                            // Full tile: every bound is a constant, so the
                            // accumulator tile stays in SIMD registers.
                            micro_kernel_full(
                                isa, fused, kcb, a_tile, b_tile, init, first_slab, i0, j0, n, out,
                            );
                        } else {
                            micro_kernel_edge(
                                kcb, a_tile, b_tile, init, first_slab, i0, j0, mrows, ncols, n, out,
                            );
                        }
                        it += 1;
                    }
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// The register-tiled inner kernel for a full `MR x NR` output tile:
/// loads the tile (or its [`GemmInit`] seed on the first slab), runs
/// `acc[r][c] += a[p][r] * b[p][c]` for every `p` in ascending order on the
/// dispatched SIMD backend, and stores it back.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel_full(
    isa: Isa,
    fused: bool,
    kc: usize,
    a_tile: &[f32],
    b_tile: &[f32],
    init: GemmInit<'_>,
    first_slab: bool,
    i0: usize,
    j0: usize,
    ldc: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    seed_tile_rows(&mut acc, init, first_slab, i0, j0, ldc, out);
    simd::microkernel_4x16(isa, fused, kc, a_tile, b_tile, &mut acc);
    store_tile_rows(&acc, i0, j0, ldc, out);
}

/// The widened paired-strip kernel for two vertically adjacent full
/// `MR x NR` tiles (a `2*MR x NR` output block): seed/load all `2*MR` rows,
/// run the widened microkernel, store back. Per element this is the same
/// ascending-`p` mul-then-add sequence as every other path.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel_full_pair(
    fused: bool,
    kc: usize,
    a_lo: &[f32],
    a_hi: &[f32],
    b_tile: &[f32],
    init: GemmInit<'_>,
    first_slab: bool,
    i0: usize,
    j0: usize,
    ldc: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; 2 * MR];
    seed_tile_rows(&mut acc, init, first_slab, i0, j0, ldc, out);
    simd::microkernel_8x16(fused, kc, a_lo, a_hi, b_tile, &mut acc);
    store_tile_rows(&acc, i0, j0, ldc, out);
}

/// Seeds a full-width accumulator block of any row count starting at output
/// row `i0`: the [`GemmInit`] seed on the first `KC` slab, the current
/// output values afterwards (or for `Accumulate`). Shared by the single and
/// paired full-tile kernels so the seeding rules cannot diverge between
/// dispatch paths.
#[inline]
fn seed_tile_rows(
    acc: &mut [[f32; NR]],
    init: GemmInit<'_>,
    first_slab: bool,
    i0: usize,
    j0: usize,
    ldc: usize,
    out: &[f32],
) {
    if first_slab {
        match init {
            GemmInit::Zero => {}
            GemmInit::Accumulate => load_tile_rows(acc, out, i0, j0, ldc),
            GemmInit::RowBias(bias) => {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    *acc_row = [bias[i0 + r]; NR];
                }
            }
        }
    } else {
        load_tile_rows(acc, out, i0, j0, ldc);
    }
}

/// Loads full `NR`-wide rows of `out` starting at `(i0, j0)` into the
/// accumulator block.
#[inline]
fn load_tile_rows(acc: &mut [[f32; NR]], out: &[f32], i0: usize, j0: usize, ldc: usize) {
    for (r, acc_row) in acc.iter_mut().enumerate() {
        let row = (i0 + r) * ldc + j0;
        acc_row.copy_from_slice(&out[row..row + NR]);
    }
}

/// Stores the accumulator block back to full `NR`-wide rows of `out`.
#[inline]
fn store_tile_rows(acc: &[[f32; NR]], i0: usize, j0: usize, ldc: usize, out: &mut [f32]) {
    for (r, acc_row) in acc.iter().enumerate() {
        let row = (i0 + r) * ldc + j0;
        out[row..row + NR].copy_from_slice(acc_row);
    }
}

/// Scalar fallback for partial tiles at the right/bottom edges: identical
/// accumulation order, one output element at a time.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel_edge(
    kc: usize,
    a_tile: &[f32],
    b_tile: &[f32],
    init: GemmInit<'_>,
    first_slab: bool,
    i0: usize,
    j0: usize,
    mrows: usize,
    ncols: usize,
    ldc: usize,
    out: &mut [f32],
) {
    for r in 0..mrows {
        for c in 0..ncols {
            let oi = (i0 + r) * ldc + j0 + c;
            let mut acc = if first_slab {
                match init {
                    GemmInit::Zero => 0.0,
                    GemmInit::Accumulate => out[oi],
                    GemmInit::RowBias(bias) => bias[i0 + r],
                }
            } else {
                out[oi]
            };
            for p in 0..kc {
                acc += a_tile[p * MR + r] * b_tile[p * NR + c];
            }
            out[oi] = acc;
        }
    }
}

/// Packs `a[ic..ic+mcb, pc..pc+kcb]` into `MR`-row strips: strip `it` holds
/// `kcb` groups of `MR` consecutive-row values (rows past `m` are zero).
fn pack_a(a: &[f32], lda: usize, ic: usize, mcb: usize, pc: usize, kcb: usize, pack: &mut [f32]) {
    let i_tiles = mcb.div_ceil(MR);
    for it in 0..i_tiles {
        let strip = &mut pack[it * kcb * MR..(it + 1) * kcb * MR];
        let rows = MR.min(mcb - it * MR);
        if rows < MR {
            strip.fill(0.0);
        }
        // Read each source row contiguously, scatter into the (L1-resident)
        // strip with stride MR.
        for r in 0..rows {
            let src_row = (ic + it * MR + r) * lda + pc;
            let src = &a[src_row..src_row + kcb];
            for (p, &v) in src.iter().enumerate() {
                strip[p * MR + r] = v;
            }
        }
    }
}

/// Packs `b[pc..pc+kcb, jc..jc+ncb]` into `NR`-column strips: strip `jt`
/// holds `kcb` groups of `NR` consecutive-column values (columns past `n` are
/// zero).
fn pack_b(b: &[f32], ldb: usize, pc: usize, kcb: usize, jc: usize, ncb: usize, pack: &mut [f32]) {
    let j_tiles = ncb.div_ceil(NR);
    for jt in 0..j_tiles {
        let strip = &mut pack[jt * kcb * NR..(jt + 1) * kcb * NR];
        let cols = NR.min(ncb - jt * NR);
        for p in 0..kcb {
            let src_row = (pc + p) * ldb + jc + jt * NR;
            let dst = &mut strip[p * NR..(p + 1) * NR];
            if cols == NR {
                dst.copy_from_slice(&b[src_row..src_row + NR]);
            } else {
                dst[..cols].copy_from_slice(&b[src_row..src_row + cols]);
                dst[cols..].fill(0.0);
            }
        }
    }
}

/// `out = A x B` followed by an in-place per-column bias pass —
/// bit-identical to `matmul` + `add_row_broadcast` (the bias joins *after*
/// each element's full `K` accumulation, exactly like the unfused pair)
/// while allocating no intermediate tensor.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_cols(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    packs: &mut PackScratch,
) {
    assert_eq!(bias.len(), n, "gemm_bias_cols: bias must have n entries");
    gemm_into(m, k, n, a, b, GemmInit::Zero, out, packs);
    super::elementwise::bias_add_rows(out, bias);
}

/// Transposes the row-major `rows x cols` matrix `src` into `dst`
/// (`cols x rows`).
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose: src must be rows*cols");
    assert_eq!(dst.len(), rows * cols, "transpose: dst must be rows*cols");
    for r in 0..rows {
        let src_row = &src[r * cols..(r + 1) * cols];
        for (c, &v) in src_row.iter().enumerate() {
            dst[c * rows + r] = v;
        }
    }
}
