//! im2col / col2im: lowering convolution onto GEMM.
//!
//! A `[c, h, w]` image is unrolled into a `[c*k*k, oh*ow]` column matrix
//! whose row index runs in `(ic, ky, kx)` order — exactly the tap order of
//! the naive convolution loops — so `weight[oc, c*k*k] x cols` accumulates
//! each output element's products in the same sequence as the 7-deep loop
//! and stays bit-identical to it. Out-of-bounds (padding) taps become `0.0`
//! entries, which add nothing.
//!
//! `col2im` is the adjoint scatter used by the input-gradient path.

/// Unrolls one `[c, h, w]` image into `cols` (`[c*k*k, oh*ow]`, fully
/// overwritten).
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    assert_eq!(x.len(), c * h * w, "im2col: image must be c*h*w");
    assert_eq!(
        cols.len(),
        c * k * k * oh * ow,
        "im2col: cols must be c*k*k*oh*ow"
    );
    let s = oh * ow;
    let mut row = 0usize;
    for ic in 0..c {
        let xc = &x[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut cols[row * s..(row + 1) * s];
                unroll_tap(xc, h, w, kx, ky, stride, padding, oh, ow, dst);
                row += 1;
            }
        }
    }
}

/// Writes one `(ky, kx)` tap's row of the column matrix: `dst[oy*ow + ox] =
/// x[oy*stride + ky - p][ox*stride + kx - p]` (or `0.0` out of bounds).
#[allow(clippy::too_many_arguments)]
fn unroll_tap(
    xc: &[f32],
    h: usize,
    w: usize,
    kx: usize,
    ky: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    // Valid output-column range: 0 <= ox*stride + kx - padding < w. The
    // clamp to `ow` can make the range empty (a tap whose every column falls
    // in the padding, e.g. a kernel spanning the whole padded width); the
    // copy below must be skipped then — `ox_lo + kx - padding` is only
    // non-negative when the range is non-empty.
    let ox_lo = padding.saturating_sub(kx).div_ceil(stride).min(ow);
    let ox_hi = if w + padding > kx {
        ((w + padding - kx - 1) / stride + 1).min(ow)
    } else {
        0
    };
    for oy in 0..oh {
        let drow = &mut dst[oy * ow..(oy + 1) * ow];
        let iy = (oy * stride + ky) as isize - padding as isize;
        if iy < 0 || iy >= h as isize {
            drow.fill(0.0);
            continue;
        }
        drow[..ox_lo.min(ow)].fill(0.0);
        drow[ox_hi..].fill(0.0);
        if ox_lo >= ox_hi {
            continue;
        }
        let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
        if stride == 1 {
            // Contiguous span: ix = ox + kx - padding.
            let ix0 = ox_lo + kx - padding;
            drow[ox_lo..ox_hi].copy_from_slice(&xrow[ix0..ix0 + (ox_hi - ox_lo)]);
        } else {
            for (ox, d) in drow[ox_lo..ox_hi].iter_mut().enumerate() {
                let ix = (ox_lo + ox) * stride + kx - padding;
                *d = xrow[ix];
            }
        }
    }
}

/// Scatter-adds a `[c*k*k, oh*ow]` column-space gradient back onto the
/// `[c, h, w]` input-gradient image (`gi += col2im(cols)`).
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    gi: &mut [f32],
) {
    assert_eq!(gi.len(), c * h * w, "col2im: grad image must be c*h*w");
    assert_eq!(
        cols.len(),
        c * k * k * oh * ow,
        "col2im: cols must be c*k*k*oh*ow"
    );
    let s = oh * ow;
    let mut row = 0usize;
    for ic in 0..c {
        let gc = &mut gi[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let src = &cols[row * s..(row + 1) * s];
                let ox_lo = padding.saturating_sub(kx).div_ceil(stride).min(ow);
                let ox_hi = if w + padding > kx {
                    ((w + padding - kx - 1) / stride + 1).min(ow)
                } else {
                    0
                };
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let grow = &mut gc[iy as usize * w..(iy as usize + 1) * w];
                    let srow = &src[oy * ow..(oy + 1) * ow];
                    for (ox, &v) in srow[ox_lo..ox_hi].iter().enumerate() {
                        let ix = (ox_lo + ox) * stride + kx - padding;
                        grow[ix] += v;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    /// Reference im2col written as the obvious quadruple loop.
    #[allow(clippy::too_many_arguments)]
    fn im2col_reference(
        x: &[f32],
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        padding: usize,
        oh: usize,
        ow: usize,
    ) -> Vec<f32> {
        let s = oh * ow;
        let mut cols = vec![0.0f32; c * k * k * s];
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ic * k + ky) * k + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                cols[row * s + oy * ow + ox] =
                                    x[(ic * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn im2col_matches_reference_across_shapes() {
        let mut rng = SeededRng::new(0xC0_15);
        for &(c, h, w, k, stride, padding) in &[
            (1usize, 4usize, 4usize, 3usize, 1usize, 1usize),
            (2, 5, 7, 3, 2, 1),
            (3, 8, 8, 1, 1, 0),
            (2, 6, 6, 2, 2, 0),
            (1, 7, 5, 3, 1, 2),
            (4, 9, 9, 5, 3, 2),
            // Kernel spans the entire padded width (w + 2p == k): some taps
            // have an empty valid column range — regression for a usize
            // underflow in the stride-1 fast path.
            (1, 3, 3, 7, 1, 2),
            (2, 4, 4, 6, 1, 1),
        ] {
            let (oh, ow) = super::super::naive::conv_out(h, w, k, stride, padding);
            let x: Vec<f32> = (0..c * h * w).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let mut cols = vec![f32::NAN; c * k * k * oh * ow];
            im2col(&x, c, h, w, k, stride, padding, oh, ow, &mut cols);
            let expect = im2col_reference(&x, c, h, w, k, stride, padding, oh, ow);
            assert_eq!(
                cols, expect,
                "im2col mismatch for c={c} h={h} w={w} k={k} s={stride} p={padding}"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint pair used by the backward pass.
        let mut rng = SeededRng::new(0xAD_30);
        for &(c, h, w, k, stride, padding) in &[
            (2usize, 5usize, 5usize, 3usize, 1usize, 1usize),
            (1, 6, 4, 2, 2, 0),
            (3, 7, 7, 3, 2, 1),
        ] {
            let (oh, ow) = super::super::naive::conv_out(h, w, k, stride, padding);
            let s = oh * ow;
            let x: Vec<f32> = (0..c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let y: Vec<f32> = (0..c * k * k * s).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut cols = vec![0.0f32; c * k * k * s];
            im2col(&x, c, h, w, k, stride, padding, oh, ow, &mut cols);
            let lhs: f64 = cols
                .iter()
                .zip(y.iter())
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            let mut gi = vec![0.0f32; c * h * w];
            col2im(&y, c, h, w, k, stride, padding, oh, ow, &mut gi);
            let rhs: f64 = x.iter().zip(gi.iter()).map(|(&a, &b)| (a * b) as f64).sum();
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "adjoint mismatch: {lhs} vs {rhs} for c={c} h={h} w={w} k={k} s={stride} p={padding}"
            );
        }
    }
}
