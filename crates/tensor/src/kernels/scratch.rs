//! Reusable scratch buffers for the compute kernels.
//!
//! Every GEMM call needs packing panels and every lowered convolution needs
//! an im2col buffer. Allocating those per call would put a heap allocation on
//! the serving engine's per-request hot path, so kernels draw them from a
//! [`KernelScratch`] arena instead: each buffer grows to its high-water mark
//! once and is reused (dirty) afterwards. Callers are responsible for fully
//! overwriting the slice they request — every kernel in this module does.
//!
//! Growth and reuse events are counted in process-wide atomics (see
//! [`stats`]) so tests can assert that a steady-state serving loop performs
//! zero scratch allocations.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Times any scratch buffer had to allocate or grow its backing storage.
static SCRATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Times a scratch buffer was handed out without touching the allocator.
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide scratch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Cumulative buffer allocations / growths since process start.
    pub allocs: u64,
    /// Cumulative allocation-free buffer reuses since process start.
    pub reuses: u64,
}

/// Reads the process-wide scratch counters.
///
/// Subtract two snapshots to measure a region of interest: a steady-state
/// serving loop must increase `reuses` without increasing `allocs`.
pub fn stats() -> ScratchStats {
    ScratchStats {
        allocs: SCRATCH_ALLOCS.load(Ordering::Relaxed),
        reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
    }
}

/// A grow-only `f32` buffer with high-water-mark reuse.
///
/// [`GrowBuf::take`] returns a slice of the requested length, growing the
/// backing storage only when the request exceeds everything seen before.
/// The returned slice is *dirty* (it holds whatever the previous user wrote);
/// callers must overwrite every element they read.
#[derive(Default)]
pub struct GrowBuf {
    buf: Vec<f32>,
}

impl GrowBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a dirty `&mut [f32]` of exactly `len` elements, growing the
    /// backing storage if needed and bumping the process-wide counters.
    pub fn take(&mut self, len: usize) -> &mut [f32] {
        if self.buf.len() < len {
            SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            self.buf.resize(len, 0.0);
        } else {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
        }
        &mut self.buf[..len]
    }

    /// Current capacity (high-water mark) in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl std::fmt::Debug for GrowBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GrowBuf(capacity={})", self.buf.len())
    }
}

/// Cloning a scratch buffer yields a fresh empty one: scratch contents are
/// transient per call, so replicating a layer onto a worker thread must not
/// copy (or share) its high-water buffers.
impl Clone for GrowBuf {
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// Packing panels used inside the blocked GEMM (see [`crate::kernels::gemm`]).
#[derive(Debug, Default, Clone)]
pub struct PackScratch {
    /// Packed A panel: `MR`-row strips, `[tiles][kc][MR]`.
    pub a: GrowBuf,
    /// Packed B panel: `NR`-column strips, `[tiles][kc][NR]`.
    pub b: GrowBuf,
}

impl PackScratch {
    /// Creates an empty packing scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The full scratch arena a GEMM-lowered layer holds between calls.
///
/// Conv layers use `cols` for the im2col matrix, `cols_t` for its transpose
/// (weight-gradient GEMMs), `grad_cols` for the column-space input gradient
/// and `weight_t` for the transposed weight, plus the GEMM `packs`. Layers
/// own one arena each; replicas start with an empty one (see [`GrowBuf`]'s
/// `Clone`).
#[derive(Debug, Default, Clone)]
pub struct KernelScratch {
    /// im2col matrix, `[c*k*k, oh*ow]`.
    pub cols: GrowBuf,
    /// Transposed im2col matrix, `[oh*ow, c*k*k]`.
    pub cols_t: GrowBuf,
    /// Column-space gradient, `[c*k*k, oh*ow]`.
    pub grad_cols: GrowBuf,
    /// Transposed weight matrix, `[c*k*k, out_c]`.
    pub weight_t: GrowBuf,
    /// GEMM packing panels.
    pub packs: PackScratch,
}

impl KernelScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
    static IN_WORKER_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current thread as a parallel worker for the guard's lifetime;
/// kernels consult this to keep their own row-parallel paths serial instead
/// of spawning nested threads (the vendored rayon shim has no shared pool to
/// cap oversubscription). Drop restores the previous state.
///
/// Batch-sharding code (`appealnet_core::parallel`, the serving engine's
/// edge pass) holds one of these inside each worker closure.
#[must_use = "the region ends when the guard drops"]
pub struct WorkerRegionGuard {
    previous: bool,
}

/// Enters a parallel worker region on this thread (see [`WorkerRegionGuard`]).
pub fn enter_worker_region() -> WorkerRegionGuard {
    let previous = IN_WORKER_REGION.with(|f| f.replace(true));
    WorkerRegionGuard { previous }
}

/// `true` while the current thread is inside a parallel worker region.
pub fn in_worker_region() -> bool {
    IN_WORKER_REGION.with(|f| f.get())
}

impl Drop for WorkerRegionGuard {
    fn drop(&mut self) {
        IN_WORKER_REGION.with(|f| f.set(self.previous));
    }
}

/// Runs `f` with this thread's shared [`KernelScratch`].
///
/// Used by scratch-less entry points ([`crate::Tensor::matmul`] and friends)
/// so repeated calls on one thread still reuse buffers. Do not call
/// recursively (the arena is a `RefCell`); kernels never do.
///
/// Caveat: the vendored rayon shim spawns transient worker threads, so work
/// dispatched onto fresh workers (sharded batch evaluation) starts with an
/// empty thread scratch each time. Long-lived threads — the serving engine's
/// calling thread, the training loop — get full reuse; see the ROADMAP note
/// on a persistent worker pool.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_buf_reuses_after_high_water() {
        let before = stats();
        let mut buf = GrowBuf::new();
        let s = buf.take(64);
        assert_eq!(s.len(), 64);
        let _ = buf.take(16);
        let _ = buf.take(64);
        let after = stats();
        assert_eq!(
            after.allocs - before.allocs,
            1,
            "only the first take allocates"
        );
        assert_eq!(after.reuses - before.reuses, 2);
        assert_eq!(buf.capacity(), 64);
    }

    #[test]
    fn clone_is_fresh_and_empty() {
        let mut buf = GrowBuf::new();
        let _ = buf.take(128);
        let clone = buf.clone();
        assert_eq!(clone.capacity(), 0);
    }

    #[test]
    fn worker_region_guard_nests_and_restores() {
        assert!(!in_worker_region());
        {
            let _outer = enter_worker_region();
            assert!(in_worker_region());
            {
                let _inner = enter_worker_region();
                assert!(in_worker_region());
            }
            assert!(in_worker_region(), "inner drop restores outer region");
        }
        assert!(!in_worker_region());
    }

    #[test]
    fn thread_scratch_is_reentrant_across_calls() {
        let cap = with_thread_scratch(|s| {
            let _ = s.cols.take(32);
            s.cols.capacity()
        });
        assert!(cap >= 32);
        let cap2 = with_thread_scratch(|s| s.cols.capacity());
        assert!(cap2 >= 32, "thread scratch persists between calls");
    }
}
