//! Reusable scratch buffers for the compute kernels.
//!
//! Every GEMM call needs packing panels and every lowered convolution needs
//! an im2col buffer. Allocating those per call would put a heap allocation on
//! the serving engine's per-request hot path, so kernels draw them from a
//! [`KernelScratch`] arena instead: each buffer grows to its high-water mark
//! once and is reused (dirty) afterwards. Callers are responsible for fully
//! overwriting the slice they request — every kernel in this module does.
//!
//! Arenas live in two places, both keyed to the **persistent** rayon worker
//! pool so high-water buffers survive across calls:
//!
//! * [`with_thread_scratch`] — a per-thread stack of arenas. Long-lived
//!   threads (the serving engine's caller, the training loop, every pool
//!   worker) retain their arenas for the life of the process; the stack
//!   makes the call reentrant, so a thread that picks up queued kernel work
//!   while waiting on its own parallel region simply uses a second arena.
//! * `with_band_packs` — a shared checkout pool of GEMM packing panels
//!   used by spawned row bands. Checkout is keyed to the *band*, not the
//!   thread, so a steady state of multi-band GEMMs reuses the same panels
//!   no matter which worker picks up which band.
//!
//! # Ownership rules
//!
//! The rules that keep this sound and allocation-free, in one place:
//!
//! 1. **Layers and models own no scratch.** [`GrowBuf`]'s `Clone` yields a
//!    fresh empty buffer, so replicating a model onto a pool worker never
//!    copies (or aliases) high-water storage — the replica warms up the
//!    *worker's* arena instead.
//! 2. **A borrowed slice never outlives its closure.** [`GrowBuf::take`]
//!    hands out `&mut [f32]` tied to the arena borrow inside
//!    [`with_thread_scratch`] / `with_band_packs`; nothing can stash it.
//! 3. **Buffers are dirty by contract.** `take` returns whatever the
//!    previous user wrote; every kernel fully overwrites the region it
//!    reads. (This is why there is no `clear` — zeroing would put a
//!    memset on the hot path for no semantic gain.)
//! 4. **Thread arenas are a stack, not a slot.** A thread that executes
//!    queued kernel work while waiting on its own parallel region
//!    (help-while-wait) pops a *second* arena rather than aliasing the
//!    first; nesting depth is bounded by the nesting of parallel regions.
//! 5. **Band slots are keyed by band index.** Spawned GEMM row band `b`
//!    always checks out slot `b`, so reuse is deterministic regardless of
//!    which worker runs which band. A concurrent multi-band GEMM (rare:
//!    the worker-region gate keeps per-sample GEMMs serial inside batch
//!    shards) can find its slot checked out; the loser pays a transient
//!    arena and the last one back wins the slot.
//! 6. **Worker regions silence nested parallelism.** [`enter_worker_region`]
//!    marks batch-shard workers so `gemm_into` stays serial under them —
//!    the batch is already parallel at the sharding level.
//!
//! Growth and reuse events are counted in process-wide atomics (see
//! [`stats`]) so tests can assert that a steady-state serving loop performs
//! zero scratch allocations (`tests/hot_path_allocations.rs`). The
//! `fast-kernels` feature does not change any of this: the fused
//! microkernels consume the same packed panels with the same shapes, so
//! scratch behavior is tier-independent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Times any scratch buffer had to allocate or grow its backing storage.
static SCRATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Times a scratch buffer was handed out without touching the allocator.
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide scratch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Cumulative buffer allocations / growths since process start.
    pub allocs: u64,
    /// Cumulative allocation-free buffer reuses since process start.
    pub reuses: u64,
}

/// Reads the process-wide scratch counters.
///
/// Subtract two snapshots to measure a region of interest: a steady-state
/// serving loop must increase `reuses` without increasing `allocs`.
pub fn stats() -> ScratchStats {
    ScratchStats {
        allocs: SCRATCH_ALLOCS.load(Ordering::Relaxed),
        reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
    }
}

/// A grow-only `f32` buffer with high-water-mark reuse.
///
/// [`GrowBuf::take`] returns a slice of the requested length, growing the
/// backing storage only when the request exceeds everything seen before.
/// The returned slice is *dirty* (it holds whatever the previous user wrote);
/// callers must overwrite every element they read.
#[derive(Default)]
pub struct GrowBuf {
    buf: Vec<f32>,
}

impl GrowBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a dirty `&mut [f32]` of exactly `len` elements, growing the
    /// backing storage if needed and bumping the process-wide counters.
    pub fn take(&mut self, len: usize) -> &mut [f32] {
        if self.buf.len() < len {
            SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            self.buf.resize(len, 0.0);
        } else {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
        }
        &mut self.buf[..len]
    }

    /// Current capacity (high-water mark) in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl std::fmt::Debug for GrowBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GrowBuf(capacity={})", self.buf.len())
    }
}

/// Cloning a scratch buffer yields a fresh empty one: scratch contents are
/// transient per call, so replicating a layer onto a worker thread must not
/// copy (or share) its high-water buffers.
impl Clone for GrowBuf {
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// A grow-only `i8` buffer with high-water-mark reuse — the int8 twin of
/// [`GrowBuf`], sharing the same process-wide counters and the same dirty
/// contract. Used for on-the-fly activation quantization in the quantized
/// GEMM (see [`crate::kernels::quant_gemm`]).
#[derive(Default)]
pub struct GrowBufI8 {
    buf: Vec<i8>,
}

impl GrowBufI8 {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a dirty `&mut [i8]` of exactly `len` elements, growing the
    /// backing storage if needed and bumping the process-wide counters.
    pub fn take(&mut self, len: usize) -> &mut [i8] {
        if self.buf.len() < len {
            SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            self.buf.resize(len, 0);
        } else {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
        }
        &mut self.buf[..len]
    }

    /// Current capacity (high-water mark) in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl std::fmt::Debug for GrowBufI8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GrowBufI8(capacity={})", self.buf.len())
    }
}

/// Same rule as [`GrowBuf`]: cloning yields a fresh empty buffer.
impl Clone for GrowBufI8 {
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// Arenas used by the quantized GEMM path (see
/// [`crate::kernels::quant_gemm`]): the int8 row buffer the activations are
/// quantized into, and an `f32` staging buffer for transposed outputs (the
/// conv layers run the quantized GEMM activation-major and transpose back).
#[derive(Debug, Default, Clone)]
pub struct QuantScratch {
    /// Quantized activation row, `[blocks_per_row * QK8_0]`, zero-padded.
    pub qa: GrowBufI8,
    /// Transposed output staging, `[m, n]`.
    pub out_t: GrowBuf,
}

impl QuantScratch {
    /// Creates an empty quantized-path scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Packing panels used inside the blocked GEMM (see [`crate::kernels::gemm`]).
#[derive(Debug, Default, Clone)]
pub struct PackScratch {
    /// Packed A panel: `MR`-row strips, `[tiles][kc][MR]`.
    pub a: GrowBuf,
    /// Packed B panel: `NR`-column strips, `[tiles][kc][NR]`.
    pub b: GrowBuf,
}

impl PackScratch {
    /// Creates an empty packing scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The full scratch arena a kernel-lowered pass draws from between calls.
///
/// Conv layers use `cols` for the im2col matrix, `cols_t` for its transpose
/// (weight-gradient GEMMs), `grad_cols` for the column-space input gradient
/// and `weight_t` for the transposed weight, plus the GEMM `packs`. Arenas
/// are retained per thread (see [`with_thread_scratch`]) — layers and model
/// replicas carry no scratch of their own, so replicating a model onto a
/// persistent pool worker automatically shares that worker's warmed-up
/// buffers.
#[derive(Debug, Default, Clone)]
pub struct KernelScratch {
    /// im2col matrix, `[c*k*k, oh*ow]`.
    pub cols: GrowBuf,
    /// Transposed im2col matrix, `[oh*ow, c*k*k]`.
    pub cols_t: GrowBuf,
    /// Column-space gradient, `[c*k*k, oh*ow]`.
    pub grad_cols: GrowBuf,
    /// Transposed weight matrix, `[c*k*k, out_c]`.
    pub weight_t: GrowBuf,
    /// GEMM packing panels.
    pub packs: PackScratch,
    /// Quantized-GEMM arenas (activation rows + transposed-output staging).
    pub quant: QuantScratch,
}

impl KernelScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// A stack of arenas per thread: `with_thread_scratch` pops one (or
    /// creates the first), runs, and pushes it back. The stack depth is the
    /// maximum nesting ever seen on the thread (1 in almost every case; 2
    /// when a thread helps execute queued kernel work while waiting on its
    /// own parallel region).
    static THREAD_SCRATCH: RefCell<Vec<KernelScratch>> = const { RefCell::new(Vec::new()) };
    static IN_WORKER_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Per-band slots of GEMM packing panels for spawned row bands (see
/// [`with_band_packs`]). `None` marks a slot currently checked out.
static BAND_PACKS: Mutex<Vec<Option<PackScratch>>> = Mutex::new(Vec::new());

/// Per-band slots of quantized-GEMM arenas for spawned row bands — the
/// quantized twin of [`BAND_PACKS`], with identical checkout semantics.
static BAND_QUANT: Mutex<Vec<Option<QuantScratch>>> = Mutex::new(Vec::new());

/// Marks the current thread as a parallel worker for the guard's lifetime;
/// kernels consult this to keep their own row-parallel paths serial — the
/// batch is already parallel at the sharding level, so splitting each
/// per-sample GEMM again would only add queueing overhead on the shared
/// worker pool. Drop restores the previous state.
///
/// Batch-sharding code (`appealnet_core::parallel`, the serving engine's
/// edge pass) holds one of these inside each worker closure.
#[must_use = "the region ends when the guard drops"]
pub struct WorkerRegionGuard {
    previous: bool,
}

/// Enters a parallel worker region on this thread (see [`WorkerRegionGuard`]).
pub fn enter_worker_region() -> WorkerRegionGuard {
    let previous = IN_WORKER_REGION.with(|f| f.replace(true));
    WorkerRegionGuard { previous }
}

/// `true` while the current thread is inside a parallel worker region.
pub fn in_worker_region() -> bool {
    IN_WORKER_REGION.with(|f| f.get())
}

impl Drop for WorkerRegionGuard {
    fn drop(&mut self) {
        IN_WORKER_REGION.with(|f| f.set(self.previous));
    }
}

/// Runs `f` with a [`KernelScratch`] arena retained by the current thread.
///
/// Used by scratch-less entry points ([`crate::Tensor::matmul`] and
/// friends) and by the conv layers, so repeated calls on one thread reuse
/// buffers. The vendored rayon shim's workers are **persistent**, so work
/// dispatched onto the pool (sharded batch evaluation, spawned GEMM bands)
/// reuses each worker's arenas across calls too.
///
/// Reentrant: a nested call (a thread executing queued kernel work while it
/// waits on its own parallel region) gets a second arena from the thread's
/// stack rather than panicking on a `RefCell` double borrow.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    let mut arena = THREAD_SCRATCH
        .with(|s| s.borrow_mut().pop())
        .unwrap_or_default();
    let out = f(&mut arena);
    THREAD_SCRATCH.with(|s| s.borrow_mut().push(arena));
    out
}

/// Runs `f` with the [`PackScratch`] dedicated to spawned row band `band`.
///
/// Spawned GEMM row bands use this instead of thread-local scratch, and the
/// slot is keyed by **band index**, not by thread or checkout order: band
/// `b` always reuses arena `b`, so once a GEMM shape has run once, repeat
/// runs perform zero packing allocations *deterministically* — regardless
/// of which persistent pool worker picks up which band or how their
/// execution overlaps. (Only concurrent multi-band GEMMs — which the
/// worker-region gate already makes rare — can contend for a slot; the
/// loser falls back to a transient arena and the last one back wins the
/// slot.) The brief mutex holds are once per band, amortized over the whole
/// band's work.
pub(crate) fn with_band_packs<R>(band: usize, f: impl FnOnce(&mut PackScratch) -> R) -> R {
    let mut packs = {
        let mut slots = BAND_PACKS.lock().expect("band scratch pool poisoned");
        if slots.len() <= band {
            slots.resize_with(band + 1, || None);
        }
        slots[band].take()
    }
    .unwrap_or_default();
    let out = f(&mut packs);
    BAND_PACKS.lock().expect("band scratch pool poisoned")[band] = Some(packs);
    out
}

/// Runs `f` with the [`QuantScratch`] dedicated to spawned row band `band` of
/// a quantized GEMM. Same band-keyed checkout discipline as
/// [`with_band_packs`]: band `b` always reuses slot `b`, so repeat runs of a
/// warmed-up shape perform zero scratch allocations deterministically.
pub(crate) fn with_band_quant<R>(band: usize, f: impl FnOnce(&mut QuantScratch) -> R) -> R {
    let mut quant = {
        let mut slots = BAND_QUANT.lock().expect("band quant pool poisoned");
        if slots.len() <= band {
            slots.resize_with(band + 1, || None);
        }
        slots[band].take()
    }
    .unwrap_or_default();
    let out = f(&mut quant);
    BAND_QUANT.lock().expect("band quant pool poisoned")[band] = Some(quant);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_buf_reuses_after_high_water() {
        let before = stats();
        let mut buf = GrowBuf::new();
        let s = buf.take(64);
        assert_eq!(s.len(), 64);
        let _ = buf.take(16);
        let _ = buf.take(64);
        let after = stats();
        assert_eq!(
            after.allocs - before.allocs,
            1,
            "only the first take allocates"
        );
        assert_eq!(after.reuses - before.reuses, 2);
        assert_eq!(buf.capacity(), 64);
    }

    #[test]
    fn grow_buf_i8_shares_counters_and_reuses() {
        let before = stats();
        let mut buf = GrowBufI8::new();
        let s = buf.take(96);
        assert_eq!(s.len(), 96);
        let _ = buf.take(32);
        let after = stats();
        assert_eq!(after.allocs - before.allocs, 1);
        assert_eq!(after.reuses - before.reuses, 1);
        assert_eq!(buf.capacity(), 96);
        assert_eq!(buf.clone().capacity(), 0, "clone must be fresh");
    }

    #[test]
    fn band_quant_slots_reuse_like_band_packs() {
        // Band indices chosen to be untouched by any quantized GEMM in tests.
        with_band_quant(93, |q| {
            let _ = q.qa.take(64);
            let _ = q.out_t.take(64);
        });
        let before = stats();
        with_band_quant(93, |q| {
            let _ = q.qa.take(64);
            let _ = q.out_t.take(32);
        });
        let after = stats();
        assert_eq!(after.allocs, before.allocs);
        assert!(after.reuses >= before.reuses + 2);
    }

    #[test]
    fn clone_is_fresh_and_empty() {
        let mut buf = GrowBuf::new();
        let _ = buf.take(128);
        let clone = buf.clone();
        assert_eq!(clone.capacity(), 0);
    }

    #[test]
    fn worker_region_guard_nests_and_restores() {
        assert!(!in_worker_region());
        {
            let _outer = enter_worker_region();
            assert!(in_worker_region());
            {
                let _inner = enter_worker_region();
                assert!(in_worker_region());
            }
            assert!(in_worker_region(), "inner drop restores outer region");
        }
        assert!(!in_worker_region());
    }

    #[test]
    fn thread_scratch_is_reentrant_across_calls() {
        let cap = with_thread_scratch(|s| {
            let _ = s.cols.take(32);
            s.cols.capacity()
        });
        assert!(cap >= 32);
        let cap2 = with_thread_scratch(|s| s.cols.capacity());
        assert!(cap2 >= 32, "thread scratch persists between calls");
    }

    #[test]
    fn thread_scratch_supports_nested_use() {
        // A nested call gets a second arena rather than panicking on a
        // RefCell double borrow (this happens when a thread helps execute
        // queued kernel work while waiting on its own parallel region).
        with_thread_scratch(|outer| {
            let _ = outer.cols.take(16);
            with_thread_scratch(|inner| {
                let _ = inner.cols.take(16);
            });
        });
    }

    #[test]
    fn band_packs_slots_reuse_high_water_buffers_per_band() {
        // Use band indices no other test (or GEMM) touches so concurrent
        // tests cannot perturb the counters for these slots.
        with_band_packs(91, |p| {
            let _ = p.a.take(64);
        });
        with_band_packs(92, |p| {
            let _ = p.a.take(64);
        });
        let before = stats();
        with_band_packs(91, |p| {
            let _ = p.a.take(64);
        });
        with_band_packs(92, |p| {
            let _ = p.a.take(32);
        });
        let after = stats();
        assert_eq!(
            after.allocs, before.allocs,
            "a band re-checkout must reuse its slot's high-water buffer"
        );
        assert!(after.reuses >= before.reuses + 2);
    }
}
