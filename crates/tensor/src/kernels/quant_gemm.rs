//! The quantized (int8 × int8 → i32) GEMM driver.
//!
//! Computes `out[m x n] = A[m x k] · Wᵀ` where `W` is a pre-quantized
//! [`QuantMatrix`] (each of its `n` rows holds one output feature's
//! reduction column as Q8_0 blocks) and the `f32` activations `A` are
//! quantized **on the fly**, one row-wide power-of-two scale per activation
//! row (per-row absmax by default, or a calibrated static scale).
//!
//! # Numeric structure (why this path has one contract)
//!
//! Per output element the computation is
//!
//! ```text
//! out[i][j] = a_scale[i] * Σ_b  w_scale[j][b] * dot_i32(qa[i][b], qw[j][b])
//! ```
//!
//! Every term is exact except the cross-block `f32` accumulation: the block
//! dot is integer arithmetic (`<= 32·127² < 2^24`, so the i32→f32 convert is
//! exact), both scales are powers of two (exact multiplies), and blocks are
//! summed in ascending order with separate `mul` + `add` on every backend.
//! The SIMD paths only vectorize the *integer* part, which is
//! order-insensitive — so the scalar, SSE2 and AVX2 kernels are
//! **bit-identical on every ISA, in both build tiers, and across band
//! counts** (`fast-kernels` compiles no fused variant of this path). What is
//! *not* exact is quantization itself; that error is governed by the
//! `quantized-tolerance` contract ([`super::NumericContract`], bounds in
//! [`super::tolerance`]).
//!
//! # Parallelism and scratch
//!
//! Mirrors the f32 driver: large problems split into contiguous row bands
//! over the persistent worker pool, the first band running on the caller's
//! [`QuantScratch`] and each spawned band checking its band-keyed arena out
//! of the shared pool (`with_band_quant`). Rows are independent — each is
//! quantized and reduced identically in either path — so banding never
//! changes a single bit.

use super::scratch::{self, QuantScratch};
use super::simd::{self, Isa};
use crate::quant::{quantize_row_into, QuantMatrix, QK8_0};

/// Minimum multiply-accumulates before the row-parallel path is worthwhile
/// (same crossover as the f32 driver's `PAR_MIN_MACS`).
const PAR_MIN_MACS: usize = 1 << 21;

/// `out[m x n] <- A[m x k] · W + bias`, with `W` the quantized `B` operand.
///
/// `bias` (length `n`, optional) is added after each element's full
/// accumulation — matching the f32 `matmul_bias` convention of one final
/// rounding. `act_scale` selects static activation quantization (a
/// calibrated power-of-two scale applied to every row, saturating at ±127)
/// instead of the default per-row absmax.
///
/// # Panics
///
/// Panics if a slice length disagrees with `m`/`k`/`n`, or if the
/// [`QuantMatrix`] shape is not `n` rows of depth `k`.
#[allow(clippy::too_many_arguments)]
pub fn quant_gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &QuantMatrix,
    bias: Option<&[f32]>,
    act_scale: Option<f32>,
    out: &mut [f32],
    quant: &mut QuantScratch,
) {
    assert_eq!(a.len(), m * k, "quant_gemm: A must be m*k");
    assert_eq!(out.len(), m * n, "quant_gemm: out must be m*n");
    assert_eq!(w.cols(), k, "quant_gemm: weight depth must be k");
    assert_eq!(w.rows(), n, "quant_gemm: weight rows must be n");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "quant_gemm: bias must have n entries");
    }
    if m == 0 || n == 0 {
        return;
    }
    quant_gemm_into_qa(m, k, n, a, w, bias, act_scale, out, &mut quant.qa);
}

/// [`quant_gemm_into`] borrowing only the i8 activation arena, for callers
/// (the conv layers) that need the sibling [`QuantScratch`] buffers for the
/// result at the same time. Shape checks live in the public wrapper.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_gemm_into_qa(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &QuantMatrix,
    bias: Option<&[f32]>,
    act_scale: Option<f32>,
    out: &mut [f32],
    qa: &mut scratch::GrowBufI8,
) {
    debug_assert!(a.len() == m * k && out.len() == m * n);
    debug_assert!(w.cols() == k && w.rows() == n);
    if m == 0 || n == 0 {
        return;
    }
    // Resolve the backend once per call, shared by all row bands.
    let isa = simd::active_isa();
    let macs = m * k.max(1) * n;
    let threads = rayon::current_num_threads();
    if threads > 1 && macs >= PAR_MIN_MACS && m >= 2 && !scratch::in_worker_region() {
        quant_gemm_parallel(isa, m, k, n, a, w, bias, act_scale, out, threads, qa);
    } else {
        quant_gemm_band(isa, m, k, n, a, w, bias, act_scale, out, qa);
    }
}

/// Serial kernel over one contiguous row band: quantize each activation row
/// into the band's arena, then reduce it against every weight row.
#[allow(clippy::too_many_arguments)]
fn quant_gemm_band(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &QuantMatrix,
    bias: Option<&[f32]>,
    act_scale: Option<f32>,
    out: &mut [f32],
    qa: &mut scratch::GrowBufI8,
) {
    let padded = w.blocks_per_row() * QK8_0;
    let qa = qa.take(padded);
    // The arena is dirty by contract; the padding tail beyond `k` is never
    // rewritten by the row loop, so zero it once here.
    qa[k..].fill(0);
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let a_scale = quantize_row_into(row, &mut qa[..k], act_scale);
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let dot = simd::quant_row_dot(isa, qa, w.row(j));
            let v = a_scale * dot;
            *o = match bias {
                Some(b) => v + b[j],
                None => v,
            };
        }
    }
}

/// Row-banded parallel driver, mirroring the f32 `gemm_parallel`: contiguous
/// non-overlapping bands, first band on the calling thread with the caller's
/// arena, spawned bands on band-keyed pool arenas.
#[allow(clippy::too_many_arguments)]
fn quant_gemm_parallel(
    isa: Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &QuantMatrix,
    bias: Option<&[f32]>,
    act_scale: Option<f32>,
    out: &mut [f32],
    threads: usize,
    qa: &mut scratch::GrowBufI8,
) {
    let bands = threads.min(m);
    let rows_per = m.div_ceil(bands);
    let mut row0 = 0usize;
    let mut jobs: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(bands);
    let mut rest = out;
    while row0 < m {
        let rows = rows_per.min(m - row0);
        let (band, tail) = rest.split_at_mut(rows * n);
        jobs.push((row0, rows, band));
        rest = tail;
        row0 += rows;
    }
    let mut jobs = jobs.into_iter();
    let first = jobs.next();
    rayon::scope(|s| {
        for (band, (band_row0, rows, band_out)) in jobs.enumerate() {
            s.spawn(move |_| {
                let band_a = &a[band_row0 * k..(band_row0 + rows) * k];
                scratch::with_band_quant(band, |q| {
                    quant_gemm_band(
                        isa, rows, k, n, band_a, w, bias, act_scale, band_out, &mut q.qa,
                    );
                });
            });
        }
        if let Some((band_row0, rows, band_out)) = first {
            let band_a = &a[band_row0 * k..(band_row0 + rows) * k];
            quant_gemm_band(isa, rows, k, n, band_a, w, bias, act_scale, band_out, qa);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::simd::{force_isa, isa_override_test_lock, supported_isas};
    use crate::kernels::tolerance;
    use crate::rng::SeededRng;

    fn random_problem(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.5, 1.5)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform(-0.5, 0.5)).collect();
        (a, b, bias)
    }

    fn run_quant(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        w: &QuantMatrix,
        bias: Option<&[f32]>,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        let mut q = QuantScratch::new();
        quant_gemm_into(m, k, n, a, w, bias, None, &mut out, &mut q);
        out
    }

    /// The f64 reference on the *quantized* operands: same quantization
    /// decisions, exact integer dots, f64 combine. The only thing the kernel
    /// adds on top is the cross-block f32 accumulation, so the kernel must
    /// match this within the tolerance harness's accumulation bound.
    fn reference_f64(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        w: &QuantMatrix,
        bias: Option<&[f32]>,
    ) -> (Vec<f64>, Vec<f64>) {
        let padded = w.blocks_per_row() * QK8_0;
        let mut qa = vec![0i8; padded];
        let mut out = vec![0.0f64; m * n];
        let mut mags = vec![0.0f64; m * n];
        for i in 0..m {
            qa.fill(0);
            let a_scale = quantize_row_into(&a[i * k..(i + 1) * k], &mut qa[..k], None);
            for j in 0..n {
                let mut acc = 0.0f64;
                let mut mag = 0.0f64;
                for (b, block) in w.row(j).iter().enumerate() {
                    let mut dot = 0i64;
                    for t in 0..QK8_0 {
                        dot += i64::from(qa[b * QK8_0 + t]) * i64::from(block.qs[t]);
                    }
                    let term = f64::from(block.scale) * dot as f64;
                    acc += term;
                    mag = mag.max(term.abs());
                }
                let v = f64::from(a_scale) * acc;
                out[i * n + j] = v + bias.map_or(0.0, |b| f64::from(b[j]));
                mags[i * n + j] = f64::from(a_scale) * mag;
            }
        }
        (out, mags)
    }

    #[test]
    fn matches_f64_reference_within_accumulation_bound() {
        for &(m, k, n) in &[(3usize, 33usize, 5usize), (8, 70, 9), (16, 128, 16)] {
            let (a, b, bias) = random_problem(m, k, n, 31 + (m * k * n) as u64);
            let w = QuantMatrix::from_b(&b, k, n);
            let got = run_quant(m, k, n, &a, &w, Some(&bias));
            let (want, mags) = reference_f64(m, k, n, &a, &w, Some(&bias));
            let steps = w.blocks_per_row() + 1; // block sum + bias add
            for idx in 0..m * n {
                let bound = tolerance::accumulation_bound(steps, mags[idx].max(want[idx].abs()));
                let err = (f64::from(got[idx]) - want[idx]).abs();
                assert!(
                    err <= bound,
                    "[{m}x{k}x{n}] elem {idx}: err {err:e} > bound {bound:e}"
                );
            }
        }
    }

    #[test]
    fn k_zero_and_empty_edges() {
        let w = QuantMatrix::from_b(&[], 0, 4);
        let mut out = vec![7.0f32; 2 * 4];
        let mut q = QuantScratch::new();
        let bias = [1.0f32, 2.0, 3.0, 4.0];
        quant_gemm_into(2, 0, 4, &[], &w, Some(&bias), None, &mut out, &mut q);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
        // m == 0 and n == 0 are no-ops.
        quant_gemm_into(0, 0, 4, &[], &w, Some(&bias), None, &mut [], &mut q);
        let w0 = QuantMatrix::from_b(&[], 3, 0);
        quant_gemm_into(2, 3, 0, &[0.0; 6], &w0, None, None, &mut [], &mut q);
    }

    #[test]
    fn zero_activations_yield_bias() {
        let (_, b, bias) = random_problem(1, 40, 6, 99);
        let w = QuantMatrix::from_b(&b, 40, 6);
        let a = vec![0.0f32; 3 * 40];
        let got = run_quant(3, 40, 6, &a, &w, Some(&bias));
        for i in 0..3 {
            assert_eq!(&got[i * 6..(i + 1) * 6], &bias[..]);
        }
    }

    #[test]
    fn static_scale_matches_dynamic_when_equal() {
        // A static scale equal to the dynamic per-row scale must reproduce
        // the dynamic path bit-for-bit (single-row input).
        let (a, b, _) = random_problem(1, 64, 5, 7);
        let w = QuantMatrix::from_b(&b, 64, 5);
        let absmax = a.iter().fold(0.0f32, |acc, x| acc.max(x.abs()));
        let s = crate::quant::q8_block_scale(absmax);
        let dynamic = run_quant(1, 64, 5, &a, &w, None);
        let mut fixed = vec![0.0f32; 5];
        let mut q = QuantScratch::new();
        quant_gemm_into(1, 64, 5, &a, &w, None, Some(s), &mut fixed, &mut q);
        for (x, y) in dynamic.iter().zip(&fixed) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn static_scale_saturates_outliers() {
        // One huge outlier with a tiny static scale must clamp to ±127
        // instead of wrapping.
        let k = QK8_0;
        let mut a = vec![0.0f32; k];
        a[0] = 1.0e6;
        a[1] = -1.0e6;
        let ones = vec![1.0f32; k]; // single output feature of all-ones
        let w = QuantMatrix::from_rows(&ones, 1, k);
        let mut out = vec![0.0f32; 1];
        let mut q = QuantScratch::new();
        let s = crate::quant::q8_block_scale(1.0);
        quant_gemm_into(1, k, 1, &a, &w, None, Some(s), &mut out, &mut q);
        // Weights quantize to exactly 127 * scale each; the clamped
        // activations are +127 and -127 and cancel.
        assert_eq!(out[0], 0.0);
    }

    /// Satellite: cross-ISA bit-identity on the PR 4 shape grid plus blocked
    /// shapes, every supported ISA plus the dispatched default.
    #[test]
    fn cross_isa_bit_identity_grid() {
        let _lock = isa_override_test_lock();
        let dims = [1usize, 5, 7, 9, 31, 33];
        let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    shapes.push((m, k, n));
                }
            }
        }
        // Blocked shapes: multiple KC slabs / several blocks per row.
        shapes.push((64, 160, 48));
        shapes.push((33, 257, 17));
        for (m, k, n) in shapes {
            let (a, b, bias) = random_problem(m, k, n, (m * 1000 + k * 10 + n) as u64);
            let w = QuantMatrix::from_b(&b, k, n);
            let prev = force_isa(Some(crate::kernels::Isa::Scalar));
            let want = run_quant(m, k, n, &a, &w, Some(&bias));
            force_isa(prev);
            let mut modes: Vec<Option<crate::kernels::Isa>> =
                supported_isas().into_iter().map(Some).collect();
            modes.push(None); // the dispatched default
            for mode in modes {
                let prev = force_isa(mode);
                let got = run_quant(m, k, n, &a, &w, Some(&bias));
                force_isa(prev);
                for (idx, (x, y)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "[{m}x{k}x{n}] {mode:?} diverges at {idx}: {x:e} vs {y:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn banded_matches_serial_bitwise() {
        // Large enough to cross PAR_MIN_MACS when threads are available; the
        // worker-region guard forces the serial path for the reference.
        let (m, k, n) = (128, 256, 80);
        let (a, b, bias) = random_problem(m, k, n, 2024);
        let w = QuantMatrix::from_b(&b, k, n);
        let banded = run_quant(m, k, n, &a, &w, Some(&bias));
        let serial = {
            let _region = scratch::enter_worker_region();
            run_quant(m, k, n, &a, &w, Some(&bias))
        };
        for (i, (x, y)) in banded.iter().zip(&serial).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "banded != serial at {i}");
        }
    }
}
