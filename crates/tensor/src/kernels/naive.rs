//! Retained naive reference kernels.
//!
//! These are verbatim ports of the seed implementations that the blocked
//! GEMM and the im2col-lowered convolutions replaced. They are kept (and
//! exported) for two reasons:
//!
//! 1. **Equivalence testing.** The optimized kernels promise results that
//!    follow the build's numeric contract — bit-identical on the default
//!    build, tolerance-bounded under `fast-kernels` (see
//!    [`super::numeric_contract`] and [`super::tolerance`]); the property
//!    suites in `kernels::tests` and `layers::conv` compare against these
//!    references over many seeded shapes, and additionally re-run them on
//!    |absolute| inputs to derive the `Σ|terms|` magnitude scales the
//!    tolerance bound needs.
//! 2. **Benchmark baselines.** `crates/bench/benches/kernel_microbench.rs`
//!    measures the optimized kernels against these loops so the speedup
//!    claim stays verifiable on any machine.
//!
//! Nothing on a hot path calls into this module.

/// The seed `Tensor::matmul` loop, including its `a == 0.0` sparsity branch.
///
/// `i-k-j` order: for each output element, products are accumulated in
/// ascending inner-dimension order. For finite inputs the sparsity skip is
/// bit-equivalent to accumulating the zero product, which is why the blocked
/// kernel can drop it.
pub fn matmul_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_naive: A must be m*k");
    assert_eq!(b.len(), k * n, "matmul_naive: B must be k*n");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Output spatial size of a convolution (same formula as the layers use).
pub fn conv_out(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    (
        (h + 2 * padding - kernel) / stride + 1,
        (w + 2 * padding - kernel) / stride + 1,
    )
}

/// The seed `Conv2d::forward` 7-deep loop over an NCHW batch.
///
/// `x` is `[n, c, h, w]`, `weight` is `[oc, c, k, k]`, `bias` is `[oc]`;
/// returns `[n, oc, oh, ow]`. The accumulator is seeded with the bias and
/// taps are accumulated in `ic -> ky -> kx` order.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_naive(
    x: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    oc: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Vec<f32> {
    let (oh, ow) = conv_out(h, w, k, stride, padding);
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[o];
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((o * c + ic) * k + ky) * k + kx;
                                acc += x[xi] * weight[wi];
                            }
                        }
                    }
                    out[((b * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// The seed `Conv2d::backward` loop. Returns `(grad_input, grad_weight,
/// grad_bias)` for a batch, with gradients accumulated from zero.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_naive(
    x: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    grad_output: &[f32],
    oc: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow) = conv_out(h, w, k, stride, padding);
    let mut gi = vec![0.0f32; n * c * h * w];
    let mut gw = vec![0.0f32; oc * c * k * k];
    let mut gb = vec![0.0f32; oc];
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_output[((b * oc + o) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gb[o] += g;
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((o * c + ic) * k + ky) * k + kx;
                                gw[wi] += g * x[xi];
                                gi[xi] += g * weight[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    (gi, gw, gb)
}

/// The seed `DepthwiseConv2d::forward` loop. `weight` is `[c, k, k]`.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_forward_naive(
    x: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    k: usize,
    stride: usize,
    padding: usize,
) -> Vec<f32> {
    let (oh, ow) = conv_out(h, w, k, stride, padding);
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[ch];
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                            let wi = (ch * k + ky) * k + kx;
                            acc += x[xi] * weight[wi];
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// The seed `DepthwiseConv2d::backward` loop. Returns `(grad_input,
/// grad_weight, grad_bias)` accumulated from zero.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_backward_naive(
    x: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    grad_output: &[f32],
    k: usize,
    stride: usize,
    padding: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow) = conv_out(h, w, k, stride, padding);
    let mut gi = vec![0.0f32; n * c * h * w];
    let mut gw = vec![0.0f32; c * k * k];
    let mut gb = vec![0.0f32; c];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_output[((b * c + ch) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gb[ch] += g;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                            let wi = (ch * k + ky) * k + kx;
                            gw[wi] += g * x[xi];
                            gi[xi] += g * weight[wi];
                        }
                    }
                }
            }
        }
    }
    (gi, gw, gb)
}
