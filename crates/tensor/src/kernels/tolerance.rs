//! The tolerance harness behind the `fast-kernels` numeric contract.
//!
//! The default build's equivalence suites assert **bit** equality against
//! the retained [`super::naive`] references. A `fast-kernels` build fuses
//! `a * b + c` into one rounding per accumulation step, so its results are
//! only *close* to the seed — and "close" needs a principled definition or
//! the suites degenerate into rubber stamps. This module provides it:
//!
//! * [`ulp_distance`] — order-exact distance between two floats in units in
//!   the last place, for asserting that two paths differ (or not) at the
//!   resolution where FMA contraction shows up.
//! * [`accumulation_bound`] — the worst-case absolute divergence between
//!   any two rounding schedules of the same `steps`-step `f32` dot-product
//!   accumulation, derived from the standard `γ_k = k·ε/(1 − k·ε)` forward
//!   error model: both the fused and the unfused kernel err at most
//!   `γ_k · Σ|aₚ·bₚ|` from the exact value, so they sit within twice that
//!   of each other. The bound scales with the data (`Σ|aₚ·bₚ|`, computed in
//!   `f64`), not with a hand-tuned epsilon.
//! * [`gemm_abs_scales`] — the per-output-element `Σ|aₚ·bₚ| (+ |seed|)`
//!   magnitudes for a GEMM, feeding the bound above.
//! * [`quantization_bound`] / [`check_quantized`] — the per-value half-step
//!   bound behind the **quantized-tolerance** contract: Q8_0 block scales
//!   are powers of two, so rounding to the int8 grid is the only error
//!   source and half a scale step is a tight bound, not an estimate.
//! * [`check_within`] / [`check_accumulation`] — non-panicking checkers
//!   (tests of the harness itself assert `Err` without `catch_unwind`).
//! * [`assert_matches_reference`] — the suite-facing assertion: **bit**
//!   equality on default builds, the accumulation bound under
//!   `fast-kernels`. Equivalence suites call this one helper so the
//!   guarantee they pin automatically follows the build's contract.
//!
//! The harness's own tests pin its *tightness*: seeded single-step cases
//! where FMA and mul-then-add provably differ in the last ulp must be
//! detected by [`ulp_distance`], sit within the one-step bound, and fail a
//! zero bound — a harness that silently passes everything cannot survive
//! them.

/// Asserts two `f32` slices are identical **bit for bit**, reporting the
/// first diverging element with `tag`. The single shared implementation of
/// the bit-equality check every equivalence and determinism suite uses
/// (and the default-build branch of [`assert_matches_reference`]).
///
/// # Panics
///
/// Panics with `tag` on a length mismatch or any bit-level difference.
pub fn assert_bits_eq(a: &[f32], b: &[f32], tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{tag}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Maps a finite `f32` onto a signed integer line where consecutive
/// representable values differ by exactly 1 (two's-complement trick; both
/// zeros map to 0).
fn ordered_key(x: f32) -> i64 {
    let bits = x.to_bits();
    if bits & 0x8000_0000 != 0 {
        -((bits & 0x7FFF_FFFF) as i64)
    } else {
        bits as i64
    }
}

/// Distance between two floats in units in the last place, counted across
/// the representable values between them (0 when bit-identical or `±0.0`
/// vs `∓0.0`; 1 for adjacent representables, crossing zero included).
///
/// Returns `u64::MAX` if either input is NaN — NaNs have no meaningful
/// neighborhood, and saturating keeps a corrupted kernel from slipping
/// through a finite bound.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    ordered_key(a).abs_diff(ordered_key(b))
}

/// Worst-case absolute divergence between any two rounding schedules (e.g.
/// fused vs mul-then-add) of one `steps`-step `f32` accumulation whose
/// per-step product magnitudes sum to `scale` (= `Σ|aₚ·bₚ| + |seed|`,
/// computed in `f64`).
///
/// Standard forward error analysis bounds each schedule within
/// `γ_k · scale` of the exact sum, `γ_k = k·ε/(1 − k·ε)`, so two schedules
/// sit within `2·γ_k · scale` of each other. One `f32::MIN_POSITIVE` of
/// absolute slack absorbs subnormal rounding at scales near zero.
pub fn accumulation_bound(steps: usize, scale: f64) -> f64 {
    let k = steps as f64;
    let eps = f64::from(f32::EPSILON);
    let gamma = (k * eps) / (1.0 - k * eps);
    2.0 * gamma * scale + f64::from(f32::MIN_POSITIVE)
}

/// Per-output-element accumulation magnitudes `Σₚ |a[i,p] · b[p,j]|`
/// (plus `|seed[i,j]|` when given) of the row-major `m·k × k·n` GEMM, in
/// `f64` — the `scale` inputs for [`accumulation_bound`].
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn gemm_abs_scales(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    seed: Option<&[f32]>,
) -> Vec<f64> {
    assert_eq!(a.len(), m * k, "abs scales: A must be m*k");
    assert_eq!(b.len(), k * n, "abs scales: B must be k*n");
    if let Some(s) = seed {
        assert_eq!(s.len(), m * n, "abs scales: seed must be m*n");
    }
    let mut scales = match seed {
        Some(s) => s.iter().map(|&v| f64::from(v).abs()).collect(),
        None => vec![0.0f64; m * n],
    };
    for i in 0..m {
        for p in 0..k {
            let av = f64::from(a[i * k + p]).abs();
            let b_row = &b[p * n..(p + 1) * n];
            let out_row = &mut scales[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * f64::from(bv).abs();
            }
        }
    }
    scales
}

/// Checks `|got[i] − want[i]| ≤ bounds[i]` elementwise, reporting the first
/// violation (index, values, bound) instead of panicking. NaN or infinite
/// `got` values fail unless `want` is bit-identical.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn check_within(got: &[f32], want: &[f32], bounds: &[f64]) -> Result<(), String> {
    assert_eq!(got.len(), want.len(), "tolerance check: length mismatch");
    assert_eq!(got.len(), bounds.len(), "tolerance check: bounds mismatch");
    for (i, ((&g, &w), &bound)) in got.iter().zip(want.iter()).zip(bounds.iter()).enumerate() {
        if g.to_bits() == w.to_bits() {
            continue;
        }
        let diff = (f64::from(g) - f64::from(w)).abs();
        if !diff.is_finite() || diff > bound {
            return Err(format!(
                "element {i}: got {g} vs reference {w} \
                 (|diff| = {diff:.3e} > bound {bound:.3e}, ulp distance {})",
                ulp_distance(g, w)
            ));
        }
    }
    Ok(())
}

/// Worst-case absolute reconstruction error of one value quantized to Q8_0
/// with block scale `scale`: half a quantization step. Because every block
/// scale is a power of two ([`crate::quant::q8_block_scale`]), `x / scale`
/// is exact and rounding to the int8 grid is the *only* error source — the
/// half-ulp bound is tight, not an estimate. One `f32::MIN_POSITIVE` of
/// slack absorbs subnormal rounding when the scale clamp engages.
///
/// This is the per-value term of the `quantized-tolerance` contract
/// ([`super::NumericContract::QuantizedTolerance`]); reductions over
/// quantized values additionally accrue [`accumulation_bound`] across their
/// block sums.
pub fn quantization_bound(scale: f32) -> f64 {
    debug_assert!(scale >= 0.0);
    0.5 * f64::from(scale) + f64::from(f32::MIN_POSITIVE)
}

/// [`check_within`] for quantized reconstructions: `got` (the dequantized
/// values) must sit within [`quantization_bound`]`(scales[i])` of `want`
/// (the f32 originals), with one scale per element (broadcast a block's
/// scale across its 32 values).
pub fn check_quantized(got: &[f32], want: &[f32], scales: &[f32]) -> Result<(), String> {
    let bounds: Vec<f64> = scales.iter().map(|&s| quantization_bound(s)).collect();
    check_within(got, want, &bounds)
}

/// [`check_within`] with per-element bounds built from
/// [`accumulation_bound`]`(steps, scales[i])`.
pub fn check_accumulation(
    got: &[f32],
    want: &[f32],
    scales: &[f64],
    steps: usize,
) -> Result<(), String> {
    let bounds: Vec<f64> = scales
        .iter()
        .map(|&s| accumulation_bound(steps, s))
        .collect();
    check_within(got, want, &bounds)
}

/// The assertion the kernel equivalence suites use against the naive
/// references: on the default build this is **bit** equality (the
/// [`BitIdenticalToSeed`](super::NumericContract::BitIdenticalToSeed)
/// contract); under `fast-kernels` it is the `steps`-step accumulation
/// bound over the scales (the
/// [`DeterministicPerBuild`](super::NumericContract::DeterministicPerBuild)
/// contract). `scales`/`steps` describe the reduction that produced each
/// element — for a GEMM, [`gemm_abs_scales`] and `k` (+1 when a bias seeds
/// the accumulator). `scales` is a closure because computing `Σ|terms|`
/// typically re-runs a reference kernel on |absolute| inputs — work the
/// default build's bit-equality branch would throw away; it is only
/// invoked under `fast-kernels`.
///
/// # Panics
///
/// Panics with `tag` and the offending element when the build's contract is
/// violated, or if the slice lengths differ.
pub fn assert_matches_reference(
    got: &[f32],
    want: &[f32],
    scales: impl FnOnce() -> Vec<f64>,
    steps: usize,
    tag: &str,
) {
    assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
    if cfg!(feature = "fast-kernels") {
        if let Err(e) = check_accumulation(got, want, &scales(), steps) {
            panic!("{tag}: fast-kernels contract violated: {e}");
        }
    } else {
        assert_bits_eq(got, want, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // Crossing zero counts the representables in between.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
    }

    /// The harness must *detect* last-ulp FMA divergence: seeded single-step
    /// cases where `fma(a, b, c)` and `a*b + c` provably differ must report
    /// a nonzero ulp distance, sit inside the one-step accumulation bound,
    /// and **fail** a zero bound. A harness that silently passes everything
    /// dies here.
    #[test]
    fn single_step_fma_divergence_is_detected_and_tightly_bounded() {
        let mut rng = SeededRng::new(0xFA_57);
        let mut diverging = 0usize;
        for _ in 0..4000 {
            let a = rng.uniform(-2.0, 2.0);
            let b = rng.uniform(-2.0, 2.0);
            let c = rng.uniform(-2.0, 2.0);
            let fused = a.mul_add(b, c);
            let unfused = a * b + c;
            let scale = f64::from(a).abs() * f64::from(b).abs() + f64::from(c).abs();
            // Both schedules always sit within the one-step bound...
            check_within(&[fused], &[unfused], &[accumulation_bound(1, scale)])
                .expect("one fused step must stay within the 1-step bound");
            if fused.to_bits() != unfused.to_bits() {
                diverging += 1;
                // ...and genuinely differing cases are seen by the harness:
                // nonzero ulp distance, and a zero bound rejects them.
                assert!(ulp_distance(fused, unfused) >= 1);
                assert!(
                    check_within(&[fused], &[unfused], &[0.0]).is_err(),
                    "a zero bound must fail on {a} * {b} + {c}"
                );
                // Away from cancellation the divergence is at most a couple
                // of ulps — the bound is doing real work, not hiding slack.
                if f64::from(fused).abs() > 0.25 * scale {
                    assert!(
                        ulp_distance(fused, unfused) <= 4,
                        "non-cancelling fma divergence should be last-ulp: \
                         {a} * {b} + {c} -> {fused} vs {unfused}"
                    );
                }
            }
        }
        assert!(
            diverging > 100,
            "seeded sweep must hit many genuinely diverging cases, got {diverging}"
        );
    }

    /// The quantized-tolerance harness must *detect* genuine quantization
    /// error, exactly as the fma teeth test above detects fused rounding:
    /// seeded adversarial blocks — all-max ties, tiny-scale (subnormal)
    /// blocks, sign-flip patterns — reconstruct within the half-step
    /// [`quantization_bound`], genuinely diverging values report a nonzero
    /// ulp distance, and a **zero** bound must fail on them. A harness that
    /// rubber-stamps everything dies here.
    #[test]
    fn quantization_divergence_is_detected_and_tightly_bounded() {
        use crate::quant::{dequantize, quantize_block, QK8_0};

        fn exercise(src: &[f32; QK8_0], diverging: &mut usize, tag: &str) {
            let block = quantize_block(src);
            let mut out = [0.0f32; QK8_0];
            dequantize(&[block], &mut out);
            let scales = [block.scale; QK8_0];
            check_quantized(&out, src, &scales)
                .unwrap_or_else(|e| panic!("{tag}: reconstruction broke the half-step bound: {e}"));
            for (&g, &w) in out.iter().zip(src.iter()) {
                if (f64::from(g) - f64::from(w)).abs() > 0.0 {
                    *diverging += 1;
                    assert!(ulp_distance(g, w) >= 1);
                    assert!(
                        check_within(&[g], &[w], &[0.0]).is_err(),
                        "{tag}: a zero bound must fail on {w} -> {g}"
                    );
                }
            }
        }

        let mut rng = SeededRng::new(0x08_00);
        let mut diverging = 0usize;
        for _ in 0..200 {
            // All-max ties: every entry is ±absmax, so every entry carries
            // the identical (usually nonzero) rounding error.
            let absmax = rng.uniform(0.5, 2.0);
            let mut ties = [0.0f32; QK8_0];
            for v in ties.iter_mut() {
                *v = if rng.bernoulli(0.5) { absmax } else { -absmax };
            }
            exercise(&ties, &mut diverging, "all-max ties");

            // Tiny-scale blocks: subnormal magnitudes engage the 2^-126
            // scale clamp, the regime the MIN_POSITIVE slack exists for.
            let mut tiny = [0.0f32; QK8_0];
            for v in tiny.iter_mut() {
                let sub = f32::from_bits((rng.next_u64() % (1u64 << 23)) as u32);
                *v = if rng.bernoulli(0.5) { sub } else { -sub };
            }
            exercise(&tiny, &mut diverging, "tiny-scale");

            // Sign flips: alternating signs with varied magnitudes, rounding
            // in both directions within one block.
            let mut flips = [0.0f32; QK8_0];
            for (i, v) in flips.iter_mut().enumerate() {
                let mag = rng.uniform(0.01, 1.0);
                *v = if i % 2 == 0 { mag } else { -mag };
            }
            exercise(&flips, &mut diverging, "sign flips");
        }
        assert!(
            diverging > 1000,
            "seeded sweep must hit many genuinely diverging values, got {diverging}"
        );
    }

    /// [`check_quantized`] rejects values beyond the half-step bound —
    /// the quantized contract has teeth against a broken kernel, not just
    /// against rounding.
    #[test]
    fn check_quantized_rejects_beyond_half_step_values() {
        let want = [1.0f32, -0.5, 0.25];
        let scales = [0.015625f32; 3]; // 2^-6
        let mut got = want;
        got[1] += 0.0079; // just beyond scale/2 = 0.0078125
        assert!(check_quantized(&got, &want, &scales).is_err());
        let mut close = want;
        close[2] += 0.0078; // just inside
        assert!(check_quantized(&close, &want, &scales).is_ok());
        // NaN never passes.
        let bad = [f32::NAN, -0.5, 0.25];
        assert!(check_quantized(&bad, &want, &scales).is_err());
        // Zero scale admits only exact (or subnormal-slack) reconstruction.
        assert!(check_quantized(&[0.5], &[1.0], &[0.0]).is_err());
        assert!(check_quantized(&[1.0], &[1.0], &[0.0]).is_ok());
    }

    #[test]
    fn check_accumulation_rejects_beyond_bound_values() {
        // A perturbation far beyond k*eps*scale must fail; one inside the
        // bound must pass. Guards against a harness whose bound is so loose
        // it never fires.
        let want = [1.0f32, -0.5, 2.0];
        let scales = [1.0f64, 0.5, 2.0];
        let mut got = want;
        got[1] += 1e-3;
        assert!(check_accumulation(&got, &want, &scales, 8).is_err());
        let mut close = want;
        close[1] = f32::from_bits(close[1].to_bits() + 1);
        assert!(check_accumulation(&close, &want, &scales, 8).is_ok());
        // NaN never passes a finite bound.
        let bad = [1.0f32, f32::NAN, 2.0];
        assert!(check_accumulation(&bad, &want, &scales, 8).is_err());
    }

    #[test]
    fn gemm_abs_scales_match_hand_computation() {
        // 2x2x2 hand case with a seed.
        let a = [1.0f32, -2.0, 3.0, 4.0];
        let b = [5.0f32, -6.0, 7.0, 8.0];
        let seed = [0.5f32, -0.25, 0.0, 1.0];
        let scales = gemm_abs_scales(2, 2, 2, &a, &b, Some(&seed));
        // scale[0,0] = |1*5| + |-2*7| + |0.5| = 19.5
        assert_eq!(scales[0], 19.5);
        // scale[0,1] = |1*-6| + |-2*8| + |-0.25| = 22.25
        assert_eq!(scales[1], 22.25);
        // scale[1,0] = |3*5| + |4*7| + 0 = 43
        assert_eq!(scales[2], 43.0);
        // scale[1,1] = |3*-6| + |4*8| + 1 = 51
        assert_eq!(scales[3], 51.0);
    }

    #[test]
    fn assert_matches_reference_accepts_identical_slices_under_any_contract() {
        let xs = [0.0f32, -1.5, 3.25];
        assert_matches_reference(&xs, &xs, || vec![1.0f64; 3], 4, "identity");
    }

    /// The default build's bit-equality branch must never pay for (or
    /// depend on) the scale computation.
    #[test]
    fn scales_closure_is_lazy_outside_the_fast_tier() {
        let xs = [1.0f32, 2.0];
        let mut called = false;
        assert_matches_reference(
            &xs,
            &xs,
            || {
                called = true;
                vec![1.0f64; 2]
            },
            1,
            "lazy",
        );
        assert_eq!(
            called,
            cfg!(feature = "fast-kernels"),
            "scales must be computed exactly when the tolerance branch runs"
        );
    }
}
