//! Integration guards for the `fast-kernels` (deterministic-per-build)
//! numeric contract — compiled only when the feature is enabled, and run by
//! the dedicated CI matrix job.
//!
//! The per-kernel guarantees (fused-vs-seed tolerance, forced-off bit
//! identity, AVX2/AVX-512 fused agreement) live in `appeal_tensor`'s unit
//! suites; this file pins the *system-level* half of the contract:
//!
//! 1. The row-banded parallel GEMM is bit-identical to the serial blocked
//!    kernel under the fused tier — band splitting never changes a single
//!    element's operation sequence, so results do not depend on
//!    `RAYON_NUM_THREADS` (pinned to 4 here, the same convention as
//!    `tests/hot_path_allocations.rs`).
//! 2. Two identically seeded serving runs produce bit-identical scores —
//!    "deterministic per build" means repeatable, not merely close.
//! 3. The engine's debug surfaces report the relaxed contract, so serving
//!    logs from a `fast-kernels` binary are never mistaken for
//!    seed-identical numbers.
#![cfg(feature = "fast-kernels")]

use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::kernels::tolerance::assert_bits_eq;
use appeal_tensor::kernels::{
    self, enter_worker_region, gemm_into, GemmInit, NumericContract, PackScratch,
};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::serve::{Engine, ThresholdPolicy};
use appealnet_core::two_head::TwoHeadNet;

/// Pins `RAYON_NUM_THREADS=4` before the first parallel operation can
/// initialize the worker pool (thread count is read once per process).
fn pin_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

#[test]
fn build_reports_deterministic_per_build_contract() {
    pin_threads();
    assert_eq!(
        kernels::numeric_contract(),
        NumericContract::DeterministicPerBuild,
        "a fast-kernels build must not claim seed bit-identity"
    );
}

/// The cross-thread-count half of the contract: a GEMM large enough for the
/// row-banded parallel path must be bit-identical to the serial blocked
/// kernel with the fused tier engaged. Bands are contiguous row ranges and
/// each element's fma sequence is untouched by the split, so any
/// `RAYON_NUM_THREADS` value computes the same bytes.
#[test]
fn banded_fused_gemm_is_bit_identical_to_serial() {
    pin_threads();
    let (m, k, n) = (160usize, 200usize, 160usize); // >= 2^21 MACs: banded path
    let mut rng = SeededRng::new(0xFA_B4);
    let a = random_vec(&mut rng, m * k);
    let b = random_vec(&mut rng, k * n);

    let mut packs = PackScratch::new();
    let mut banded = vec![f32::NAN; m * n];
    gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut banded, &mut packs);

    // The worker-region guard forces the serial blocked kernel — the same
    // code path a 1-thread run takes.
    let mut serial = vec![f32::NAN; m * n];
    {
        let _guard = enter_worker_region();
        gemm_into(m, k, n, &a, &b, GemmInit::Zero, &mut serial, &mut packs);
    }
    assert_bits_eq(&banded, &serial, "banded vs serial fused GEMM");

    // Same property under GemmInit::Accumulate (the gradient path).
    let seed = random_vec(&mut rng, m * n);
    let mut banded_acc = seed.clone();
    gemm_into(
        m,
        k,
        n,
        &a,
        &b,
        GemmInit::Accumulate,
        &mut banded_acc,
        &mut packs,
    );
    let mut serial_acc = seed;
    {
        let _guard = enter_worker_region();
        gemm_into(
            m,
            k,
            n,
            &a,
            &b,
            GemmInit::Accumulate,
            &mut serial_acc,
            &mut packs,
        );
    }
    assert_bits_eq(&banded_acc, &serial_acc, "banded vs serial accumulate");
}

/// Builds an identically seeded (two-head, big) model pair — the
/// `tests/determinism.rs` fixture at this file's scale.
fn seeded_models() -> (TwoHeadNet, appeal_models::ClassifierParts) {
    let mut rng = SeededRng::new(0x5EED);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 6).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 6).build(&mut rng);
    (TwoHeadNet::from_parts(little, &mut rng), big)
}

/// "Deterministic per build" must mean *repeatable*: two identically seeded
/// serving runs on this binary produce bit-identical scores and identical
/// routing, even though neither matches a default build bit-for-bit. (Both
/// runs share this process, so this pins within-process repeatability;
/// cross-invocation repeatability — nothing address- or env-derived feeds a
/// kernel — is exercised by diffing experiment reports across separate
/// binary runs, per docs/DETERMINISM.md.)
#[test]
fn repeated_serving_runs_are_bit_identical() {
    pin_threads();
    let mut rng = SeededRng::new(0xD0_5E);
    let images = Tensor::randn(&[19, 3, 12, 12], &mut rng);
    let run = || {
        let (net, big) = seeded_models();
        let mut engine = Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .build()
            .unwrap();
        engine.classify_batch(&images).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), second.len());
    for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert_eq!(a.label, b.label, "label diverges at sample {i}");
        assert_eq!(a.route, b.route, "route diverges at sample {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score not bit-identical at sample {i}"
        );
    }
}

#[test]
fn engine_debug_surfaces_relaxed_contract() {
    pin_threads();
    let (net, big) = seeded_models();
    let engine = Engine::builder().appealnet(net).big(big).build().unwrap();
    let stats = format!("{:?}", engine.stats());
    assert!(
        stats.contains("deterministic-per-build"),
        "fast-kernels EngineStats must report the relaxed contract: {stats}"
    );
    if kernels::fused_active() {
        assert!(
            stats.contains("+fma"),
            "dispatched fused tier must be marked: {stats}"
        );
    }
}
