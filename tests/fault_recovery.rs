//! Fault-injection and recovery guards for the fleet simulator.
//!
//! These pin the degradation ladder end to end: a full uplink queue falls
//! back to the edge, an exhausted retry budget degrades to the little net's
//! answer, a transient cloud outage walks the breaker through
//! open → half-open → closed, a dead link surfaces as typed `LinkDown`
//! failures, and a fully faulted run still replays byte-for-byte from its
//! seed. Every run must keep `FleetMetrics::check` empty — the ledgers are
//! the contract.

use appeal_hw::{DeviceSpec, FaultEvent, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::two_head::TwoHeadNet;
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    BreakerConfig, CloudConfig, CooperativeConfig, FleetConfig, FleetMetrics, FleetSim,
    GossipConfig, RecoveryConfig, RetryConfig,
};

const MS: u64 = 1_000_000;

fn config(delta: f64, faults: FaultPlan, recovery: Option<RecoveryConfig>) -> FleetConfig {
    FleetConfig {
        nodes: 4,
        delta,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: CloudConfig {
            device: DeviceSpec::cloud_gpu(),
            max_batch: 8,
            deadline_ms: 2.0,
            batch_overhead_ms: 1.0,
            shed_backlog_ms: None,
        },
        link: StochasticLink::wifi(),
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery,
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults,
        slo_ms: 100.0,
        chunk: ChunkPolicy::sequential(),
        seed: 2021,
    }
}

fn trace(requests: usize, mean_gap_nanos: u64) -> TraceSpec {
    TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos,
        clients: 16,
        seed: 2021,
    }
}

fn run(config: FleetConfig, trace: &TraceSpec) -> FleetMetrics {
    let mut rng = SeededRng::new(2021);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
    FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config)
        .expect("valid config")
        .run(trace)
}

fn checked(metrics: &FleetMetrics) {
    let violations = metrics.check();
    assert!(violations.is_empty(), "{violations:?}");
}

/// A bounded uplink queue sheds first-attempt appeals as edge fallbacks, and
/// the uplink ledger reconciles exactly against them.
#[test]
fn full_uplink_queue_falls_back_to_the_edge() {
    let mut c = config(
        1.0,
        FaultPlan::none(),
        Some(RecoveryConfig::default_for_appeals()),
    );
    c.link.queue_capacity = 1;
    let spec = TraceSpec {
        shape: TraceShape::Bursty { burst: 8 },
        requests: 96,
        mean_gap_nanos: MS, // 1 ms bursts against multi-ms transfers
        clients: 16,
        seed: 2021,
    };
    let m = run(c, &spec);
    checked(&m);
    assert!(
        m.link_fallbacks > 0,
        "a capacity-1 uplink under bursts must shed appeals"
    );
    assert_eq!(
        m.uplink_rejected,
        m.link_fallbacks + m.appeal_queue_full,
        "every uplink rejection is a fallback or a failed retry"
    );
    assert_eq!(m.completed, 96, "shed appeals still answer on the edge");
}

/// Under a permanent blackout with no breaker, the retry budget is the only
/// defense: every cloud-bound request burns its attempts and then degrades
/// to the little net's answer.
#[test]
fn retry_budget_exhaustion_degrades_to_the_little_net() {
    let plan = FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 0,
            until_nanos: u64::MAX,
        }],
    )
    .unwrap();
    let recovery = RecoveryConfig {
        appeal_deadline_ms: 20.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 2.0,
            max_backoff_ms: 10.0,
        },
        breaker: None,
    };
    let m = run(config(0.9, plan, Some(recovery)), &trace(192, 2 * MS));
    checked(&m);
    assert_eq!(m.cloud_answered, 0, "a blacked-out cloud answers nothing");
    assert_eq!(m.completed, 192, "no request may strand");
    assert!(m.degraded_local > 0, "exhausted retries must degrade");
    assert_eq!(m.breaker_denied, 0, "no breaker is configured");
    assert!(
        m.retries >= m.degraded_local,
        "every degraded request retried at least once: {} retries, {} degraded",
        m.retries,
        m.degraded_local
    );
    assert!(m.appeal_timeouts > 0);
    assert!(
        m.degraded_agreement.is_some(),
        "degraded answers must report their counterfactual accuracy"
    );
}

/// A transient outage walks the breaker through its whole state machine:
/// failures trip it open, the open timer admits half-open probes, and probe
/// successes against the recovered cloud close it again.
#[test]
fn breaker_cycles_open_half_open_closed_under_a_transient_outage() {
    let plan = FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 10 * MS,
            until_nanos: 80 * MS,
        }],
    )
    .unwrap();
    let recovery = RecoveryConfig {
        appeal_deadline_ms: 20.0,
        retry: RetryConfig {
            max_attempts: 2,
            base_backoff_ms: 2.0,
            max_backoff_ms: 10.0,
        },
        breaker: Some(BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            slow_ms: 10_000.0, // only real failures count here
            open_ms: 40.0,
            probes: 2,
        }),
    };
    let m = run(config(0.9, plan, Some(recovery)), &trace(384, 2 * MS));
    checked(&m);
    assert!(m.breaker_opened > 0, "the outage must trip the breaker");
    assert!(
        m.breaker_half_opened > 0,
        "the open timer must admit probes"
    );
    assert!(
        m.breaker_closed > 0,
        "probes against the recovered cloud must close the breaker"
    );
    assert!(
        m.cloud_answered > 0,
        "service must resume once the breaker closes"
    );
}

/// A dead link (loss = 1.0) is a typed, accounted failure — not a hang: the
/// recovery path sees `HwError::LinkDown`, spends its retry budget, and
/// degrades.
#[test]
fn dead_link_surfaces_typed_link_down_failures() {
    let mut c = config(
        0.9,
        FaultPlan::none(),
        Some(RecoveryConfig::default_for_appeals()),
    );
    c.link.loss = 1.0;
    let m = run(c, &trace(96, 2 * MS));
    checked(&m);
    assert_eq!(m.cloud_answered, 0, "nothing crosses a fully lossy link");
    assert!(m.link_down > 0, "attempts must fail as LinkDown, not hang");
    assert!(m.degraded_local > 0);
    assert_eq!(m.completed, 96);
}

/// A run scripted with every fault type at once still replays byte-for-byte
/// from its seed — fault injection must not leak nondeterminism.
#[test]
fn faulted_runs_replay_byte_identically() {
    let plan = || {
        FaultPlan::new(
            2021,
            vec![
                FaultEvent::CloudBlackout {
                    from_nanos: 30 * MS,
                    until_nanos: 60 * MS,
                },
                FaultEvent::LinkBrownout {
                    from_nanos: 20 * MS,
                    until_nanos: 120 * MS,
                    severity: 3.0,
                },
                FaultEvent::ResponseDrop {
                    from_nanos: 0,
                    until_nanos: u64::MAX,
                    probability: 0.25,
                },
                FaultEvent::ResponseCorrupt {
                    from_nanos: 0,
                    until_nanos: u64::MAX,
                    probability: 0.2,
                },
                FaultEvent::NodeCrash {
                    node: 0,
                    at_nanos: 20 * MS,
                    down_nanos: 50 * MS,
                },
            ],
        )
        .unwrap()
    };
    let spec = trace(192, 2 * MS);
    let recovery = Some(RecoveryConfig::default_for_appeals());
    let first = run(config(0.9, plan(), recovery), &spec);
    let second = run(config(0.9, plan(), recovery), &spec);
    checked(&first);
    assert!(first.faults_scripted && first.recovery_enabled);
    assert!(
        first.crash_stalls > 0,
        "the crashed node must stall arrivals"
    );
    assert_eq!(
        first.render(),
        second.render(),
        "scripted faults must stay byte-reproducible"
    );
}

fn full_blackout() -> FaultPlan {
    FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 10 * MS,
            until_nanos: u64::MAX,
        }],
    )
    .unwrap()
}

/// A recovery ladder tight enough to detect failures inside the short test
/// traces (the stock 250 ms appeal deadline outlives them entirely).
fn tight_recovery() -> RecoveryConfig {
    RecoveryConfig {
        appeal_deadline_ms: 40.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 5.0,
            max_backoff_ms: 40.0,
        },
        breaker: Some(BreakerConfig::default_for_appeals()),
    }
}

fn cooperative_config(faults: FaultPlan) -> FleetConfig {
    let mut c = config(0.9, faults, Some(tight_recovery()));
    c.gossip = GossipConfig::default_for_fleet();
    c.cooperative = Some(CooperativeConfig::default_for_fleet());
    c
}

/// The cooperative policy must actually fire under a full blackout — gossip
/// digests flow, a quorum of unhealthy neighbours pre-emptively opens
/// breakers, fleet stress sheds appeals locally — and every new ledger must
/// reconcile exactly.
#[test]
fn cooperative_policy_fires_and_ledgers_reconcile_under_blackout() {
    let m = run(cooperative_config(full_blackout()), &trace(96, 2 * MS));
    checked(&m);
    assert!(m.gossip_sent > 0, "gossip rounds must exchange digests");
    assert_eq!(m.gossip_sent, m.gossip_received);
    assert!(m.gossip_applied > 0, "fresh digests must merge into views");
    assert!(
        m.preemptive_opens > 0,
        "a quorum of unhealthy neighbours must pre-open breakers"
    );
    assert!(
        m.stress_shed > 0,
        "fleet stress must shed appeals before they reach the breaker"
    );
    assert!(
        m.probe_elections >= m.preemptive_opens,
        "every cooperative trip runs a probe election"
    );
    assert_eq!(m.completed, 96, "no request may strand");
}

/// A cooperative fleet must beat the same fleet with gossip disabled on both
/// headline outcomes of a full blackout: SLO violations and wasted uplink
/// (accepted transfers that never produced a cloud answer).
#[test]
fn cooperative_fleet_beats_independent_under_full_blackout() {
    let spec = trace(96, 2 * MS);
    let indep = run(config(0.9, full_blackout(), Some(tight_recovery())), &spec);
    let coop = run(cooperative_config(full_blackout()), &spec);
    checked(&indep);
    checked(&coop);
    assert!(
        coop.slo_violations < indep.slo_violations,
        "cooperative SLO violations {} must beat independent {}",
        coop.slo_violations,
        indep.slo_violations
    );
    let wasted = |m: &FleetMetrics| m.uplink_accepted - m.cloud_answered;
    assert!(
        wasted(&coop) < wasted(&indep),
        "cooperative wasted uplink {} must beat independent {}",
        wasted(&coop),
        wasted(&indep)
    );
}

/// Cooperative runs are as byte-reproducible as everything else: the gossip
/// plane draws from its own salted RNG streams, so two identical configs
/// replay identical bytes.
#[test]
fn cooperative_runs_replay_byte_identically() {
    let spec = trace(96, 2 * MS);
    let first = run(cooperative_config(full_blackout()), &spec);
    let second = run(cooperative_config(full_blackout()), &spec);
    assert_eq!(
        first.render(),
        second.render(),
        "gossip must stay byte-reproducible"
    );
}

/// Gossip without the cooperative policy observes but never acts: digests
/// flow and ledgers reconcile, while every cooperative counter stays zero.
#[test]
fn gossip_without_policy_observes_but_never_acts() {
    let mut c = config(0.9, full_blackout(), Some(tight_recovery()));
    c.gossip = GossipConfig::default_for_fleet();
    let m = run(c, &trace(96, 2 * MS));
    checked(&m);
    assert!(m.gossip_sent > 0);
    assert_eq!(m.stress_shed, 0);
    assert_eq!(m.preemptive_opens, 0);
    assert_eq!(m.probe_elections, 0);
}

/// Satellite regression: a retry admitted exactly at the breaker's
/// open-timer deadline *is* the half-open probe. The attempt must ledger
/// once — as a probe — and the probe ledger must reconcile; the old code
/// double-counted it as a retry plus a synthetic probe.
#[test]
fn retry_admitted_at_the_open_timer_boundary_ledgers_one_probe() {
    // open_ms == base_backoff == max_backoff: a failure that trips the
    // breaker schedules its retry for the same virtual nanosecond the open
    // timer expires, forcing the Open -> HalfOpen admission tie.
    let recovery = RecoveryConfig {
        appeal_deadline_ms: 20.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 40.0,
            max_backoff_ms: 40.0,
        },
        breaker: Some(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            slow_ms: 10_000.0,
            open_ms: 40.0,
            probes: 1,
        }),
    };
    let plan = FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 10 * MS,
            until_nanos: 150 * MS,
        }],
    )
    .unwrap();
    let m = run(config(0.9, plan, Some(recovery)), &trace(192, 2 * MS));
    checked(&m);
    assert!(
        m.breaker_half_opened > 0,
        "the open timer must admit half-open traffic"
    );
    assert!(m.probe_attempts > 0, "probes must be admitted");
    assert!(m.retries > 0, "the retry ladder must run");
    assert_eq!(
        m.probe_attempts,
        m.probe_ok + m.probe_failed + m.probe_orphaned + m.probe_unresolved,
        "every admitted probe resolves exactly once"
    );
}
