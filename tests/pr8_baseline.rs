//! Pins the pre-gossip (PR 8) fleet behavior byte-for-byte.
//!
//! The cooperative health plane must be a *strict* extension: with
//! `GossipConfig::disabled()` (and no cooperative policy) the simulator must
//! consume the same RNG draws, schedule the same events, and render the same
//! metric bytes as the PR 8 code that predates gossip entirely. This test
//! replays four representative scenarios — full blackout with breaker,
//! transient blackout (half-open probe traffic), the chaos mix, and a plain
//! adaptive PR 7 run — against a committed snapshot captured from the PR 8
//! tree.
//!
//! Regenerate the snapshot (only when a deliberate behavior change is being
//! made) with:
//!
//! ```text
//! APPEALNET_BLESS=1 cargo test --release --test pr8_baseline
//! ```
//!
//! The snapshot is captured under the default `bit-identical-to-seed`
//! kernel contract; the `fast-kernels` FMA tier produces different (equally
//! deterministic) floats, so this suite only runs on the default tier.
#![cfg(not(feature = "fast-kernels"))]

use appeal_hw::{DeviceSpec, FaultEvent, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::two_head::TwoHeadNet;
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    AdaptiveConfig, BreakerConfig, CloudConfig, FleetConfig, FleetSim, GossipConfig,
    RecoveryConfig, RetryConfig,
};

const MS: u64 = 1_000_000;
const SNAPSHOT: &str = "tests/snapshots/pr8_fleet_baseline.txt";

fn recovery(with_breaker: bool) -> RecoveryConfig {
    RecoveryConfig {
        appeal_deadline_ms: 40.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 5.0,
            max_backoff_ms: 40.0,
        },
        breaker: if with_breaker {
            Some(BreakerConfig::default_for_appeals())
        } else {
            None
        },
    }
}

fn config(delta: f64, faults: FaultPlan, rec: Option<RecoveryConfig>) -> FleetConfig {
    FleetConfig {
        nodes: 4,
        delta,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: CloudConfig {
            device: DeviceSpec::cloud_gpu(),
            max_batch: 8,
            deadline_ms: 2.0,
            batch_overhead_ms: 1.0,
            shed_backlog_ms: None,
        },
        link: StochasticLink::wifi(),
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery: rec,
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults,
        slo_ms: 100.0,
        chunk: ChunkPolicy::sequential(),
        seed: 2021,
    }
}

fn trace(requests: usize) -> TraceSpec {
    TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos: 2 * MS,
        clients: 64,
        seed: 2021,
    }
}

fn run(config: FleetConfig, trace: &TraceSpec) -> String {
    let mut rng = SeededRng::new(2021);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
    FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config)
        .expect("valid config")
        .run(trace)
        .render()
}

fn blackout(from: u64, until: u64) -> FaultPlan {
    FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: from,
            until_nanos: until,
        }],
    )
    .unwrap()
}

fn scenarios() -> Vec<(&'static str, String)> {
    let full = config(0.9, blackout(10 * MS, u64::MAX), Some(recovery(true)));
    let transient = config(0.9, blackout(10 * MS, 70 * MS), Some(recovery(true)));
    let chaos_plan = FaultPlan::new(
        2021,
        vec![
            FaultEvent::LinkBrownout {
                from_nanos: 20 * MS,
                until_nanos: 120 * MS,
                severity: 3.0,
            },
            FaultEvent::ResponseDrop {
                from_nanos: 0,
                until_nanos: u64::MAX,
                probability: 0.25,
            },
            FaultEvent::ResponseCorrupt {
                from_nanos: 0,
                until_nanos: u64::MAX,
                probability: 0.2,
            },
            FaultEvent::NodeCrash {
                node: 0,
                at_nanos: 20 * MS,
                down_nanos: 50 * MS,
            },
        ],
    )
    .unwrap();
    let chaos = config(0.9, chaos_plan, Some(recovery(true)));
    let mut adaptive = config(1.0, FaultPlan::none(), None);
    adaptive.link = StochasticLink::lte();
    adaptive.adaptive = Some(AdaptiveConfig {
        window: 8,
        budget_ms: 510.0,
        target_ms: 89.25,
        floor_ms: 102.0,
    });
    let spec = trace(96);
    vec![
        ("full-blackout breaker-on", run(full, &spec)),
        ("transient-blackout breaker-on", run(transient, &spec)),
        ("chaos-mix breaker-on", run(chaos, &spec)),
        ("pr7 adaptive lte no-recovery", run(adaptive, &spec)),
    ]
}

fn rendered() -> String {
    let mut out = String::new();
    for (name, body) in scenarios() {
        out.push_str(&format!("=== {name} ===\n{body}"));
    }
    out
}

#[test]
fn gossip_disabled_replays_the_pr8_baseline_byte_for_byte() {
    let got = rendered();
    if std::env::var("APPEALNET_BLESS").is_ok() {
        std::fs::create_dir_all("tests/snapshots").unwrap();
        std::fs::write(SNAPSHOT, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(SNAPSHOT)
        .expect("snapshot missing: run with APPEALNET_BLESS=1 to regenerate");
    assert_eq!(
        got, want,
        "disabled gossip must replay the PR 8 fleet byte-for-byte"
    );
}
