//! End-to-end guards for the quantized (Q8_0) little-net tier.
//!
//! Three layers of the stack are pinned here. First, serving: an engine built
//! on a quantized two-head net must route every request exactly like its f32
//! twin except where the routing score sits within the observed quantization
//! tolerance of δ — a flip away from the threshold band is a bug, not noise.
//! Second, determinism: the quantized evaluate path must stay bitwise stable
//! across batch sizes, chunk policies and the pinned worker-thread count,
//! exactly like the f32 path (`tests/determinism.rs`). Third, the fleet:
//! `degraded_agreement` accounting must keep reconciling when the edge tier
//! that answers degraded requests is quantized.

use appeal_hw::{DeviceSpec, FaultEvent, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::{Engine, InferenceResponse, Route, ThresholdPolicy, TwoHeadNet};
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    CloudConfig, FleetConfig, FleetMetrics, FleetSim, GossipConfig, RecoveryConfig, RetryConfig,
};

const MS: u64 = 1_000_000;
const DELTA: f64 = 0.5;

/// Bounds worker-thread nondeterminism the same way `tests/fast_kernels.rs`
/// does: the first test to run fixes the pool size before rayon spawns it.
fn pin_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

/// One jointly seeded little/big pair; the caller decides whether to
/// quantize the little net before handing it to an engine or a fleet.
fn trained_pair(seed: u64) -> (TwoHeadNet, appeal_models::ClassifierParts) {
    let mut rng = SeededRng::new(seed);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
    (TwoHeadNet::from_parts(little, &mut rng), big)
}

fn engine_from(net: TwoHeadNet, big: appeal_models::ClassifierParts, chunk: ChunkPolicy) -> Engine {
    Engine::builder()
        .appealnet(net)
        .big(big)
        .policy(ThresholdPolicy::new(DELTA).unwrap())
        .chunk_policy(chunk)
        .max_batch(64)
        .build()
        .unwrap()
}

fn batch(n: usize, seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    Tensor::randn(&[n, 3, 12, 12], &mut rng)
}

fn assert_bit_identical(a: &[InferenceResponse], b: &[InferenceResponse], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: response counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}");
        assert_eq!(x.label, y.label, "{what}: request {}", x.id);
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: request {}",
            x.id
        );
        assert_eq!(x.route, y.route, "{what}: request {}", x.id);
    }
}

/// Quantizing the edge scorer may flip a route only where the f32 score (or
/// the quantized score) sits within the observed score divergence of δ; every
/// other request must route identically, and requests both tiers offload must
/// get the same answer from the shared f32 big network.
#[test]
fn quantized_engine_routes_diverge_only_inside_the_tolerance_band() {
    pin_threads();
    let (net, big) = trained_pair(5);
    let mut qnet = net.clone();
    let reports = qnet.quantize_weights();
    assert!(reports.iter().all(|r| r.within_bound()), "{reports:?}");

    let mut f32_engine = engine_from(net, big.clone(), ChunkPolicy::runtime());
    let mut q_engine = engine_from(qnet, big, ChunkPolicy::runtime());
    assert!(!f32_engine.stats().edge_quantized);
    assert!(q_engine.stats().edge_quantized);
    assert!(
        format!("{q_engine:?}").contains("quantized-tolerance"),
        "the quantized engine must advertise the third numeric contract"
    );

    let images = batch(96, 41);
    let f32_responses = f32_engine.classify_batch(&images).unwrap();
    let q_responses = q_engine.classify_batch(&images).unwrap();
    assert_eq!(f32_responses.len(), 96);
    assert_eq!(q_responses.len(), 96);

    let tol = f32_responses
        .iter()
        .zip(&q_responses)
        .map(|(f, q)| (f64::from(f.score) - f64::from(q.score)).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        tol < 0.05,
        "Q8_0 should perturb routing scores only slightly, got {tol}"
    );

    let mut flips = 0usize;
    for (f, q) in f32_responses.iter().zip(&q_responses) {
        if f.route != q.route {
            flips += 1;
            let f_dist = (f64::from(f.score) - DELTA).abs();
            let q_dist = (f64::from(q.score) - DELTA).abs();
            assert!(
                f_dist <= tol || q_dist <= tol,
                "request {} flipped {:?} -> {:?} with scores {} / {} at delta {DELTA}: \
                 outside the tolerance band {tol}",
                f.id,
                f.route,
                q.route,
                f.score,
                q.score
            );
        } else if f.route == Route::Cloud {
            // Both offloaded: the big network is the same f32 model and its
            // per-sample outputs are batch-composition invariant, so the
            // answers must agree exactly.
            assert_eq!(
                f.label, q.label,
                "request {} offloaded by both tiers must get the same cloud answer",
                f.id
            );
        }
    }
    // The tolerance attribution above is vacuous if quantization never flips
    // anything *and* never could; make sure the band test had teeth by
    // checking the engines actually disagreed on scores somewhere.
    assert!(tol > 0.0, "quantization must move at least one score");
    let offloaded = f32_responses
        .iter()
        .filter(|r| r.route == Route::Cloud)
        .count();
    assert!(
        offloaded > 0 && offloaded < 96,
        "delta {DELTA} must split the batch for the flip test to mean anything"
    );
    let _ = flips; // zero flips is legal: every score may sit far from delta
}

/// The quantized evaluate path inherits the f32 determinism contract:
/// bitwise-identical q scores across batch sizes and chunk policies, and
/// bitwise-identical engine responses across serial and banded execution,
/// all under the pinned worker-thread count.
#[test]
fn quantized_evaluate_is_bitwise_stable_across_batching_and_sharding() {
    pin_threads();
    let (net, big) = trained_pair(5);
    let mut qnet = net.clone();
    qnet.quantize_weights();
    let images = batch(48, 17);

    let reference = qnet.evaluate_with_policy(&images, 48, &ChunkPolicy::sequential());
    for (batch_size, chunk) in [
        (4, ChunkPolicy::sequential()),
        (48, ChunkPolicy::runtime()),
        (
            8,
            ChunkPolicy {
                min_shard: 4,
                max_shards: 8,
            },
        ),
    ] {
        let out = qnet.evaluate_with_policy(&images, batch_size, &chunk);
        assert_eq!(reference.q.len(), out.q.len());
        for (i, (a, b)) in reference.q.iter().zip(&out.q).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sample {i} diverged at batch {batch_size}, chunk {chunk:?}"
            );
        }
        assert_eq!(reference.predictions(), out.predictions());
    }

    // Same guarantee one layer up: a banded engine and a serial engine built
    // from the same quantized weights must answer byte-identically.
    let mut serial = engine_from(qnet.clone(), big.clone(), ChunkPolicy::sequential());
    let mut banded = engine_from(
        qnet,
        big,
        ChunkPolicy {
            min_shard: 4,
            max_shards: 8,
        },
    );
    let serial_responses = serial.classify_batch(&images).unwrap();
    let banded_responses = banded.classify_batch(&images).unwrap();
    assert_bit_identical(&serial_responses, &banded_responses, "serial vs banded");
}

fn fleet_config(faults: FaultPlan, recovery: Option<RecoveryConfig>) -> FleetConfig {
    FleetConfig {
        nodes: 4,
        delta: 0.9,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: CloudConfig {
            device: DeviceSpec::cloud_gpu(),
            max_batch: 8,
            deadline_ms: 2.0,
            batch_overhead_ms: 1.0,
            shed_backlog_ms: None,
        },
        link: StochasticLink::wifi(),
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery,
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults,
        slo_ms: 100.0,
        chunk: ChunkPolicy::sequential(),
        seed: 2021,
    }
}

fn run_quantized_fleet(config: FleetConfig, trace: &TraceSpec) -> FleetMetrics {
    let (mut little, big) = trained_pair(2021);
    let reports = little.quantize_weights();
    assert!(reports.iter().all(|r| r.within_bound()), "{reports:?}");
    FleetSim::new(little, big, config)
        .expect("valid config")
        .run(trace)
}

/// A permanent cloud blackout forces every appeal through the retry budget
/// and down to `DegradedLocal`, where the *quantized* little net answers.
/// The counterfactual `degraded_agreement` ledger must still reconcile: it is
/// present exactly when degraded requests exist, stays a valid fraction, and
/// the whole faulted run replays byte-for-byte.
#[test]
fn fleet_degraded_agreement_reconciles_with_a_quantized_edge_tier() {
    pin_threads();
    let trace = TraceSpec {
        shape: TraceShape::Uniform,
        requests: 192,
        mean_gap_nanos: 2 * MS,
        clients: 16,
        seed: 2021,
    };
    let blackout = FaultPlan::new(
        2021,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 0,
            until_nanos: u64::MAX,
        }],
    )
    .unwrap();
    let recovery = RecoveryConfig {
        appeal_deadline_ms: 20.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 2.0,
            max_backoff_ms: 10.0,
        },
        breaker: None,
    };

    let m = run_quantized_fleet(fleet_config(blackout.clone(), Some(recovery)), &trace);
    assert!(m.check().is_empty(), "{:?}", m.check());
    assert_eq!(m.completed, 192, "no request may strand");
    assert!(m.degraded_local > 0, "the blackout must force degradation");
    let agreement = m
        .degraded_agreement
        .expect("degraded requests exist, so the counterfactual ledger must too");
    assert!(
        (0.0..=1.0).contains(&agreement),
        "degraded_agreement must be a fraction, got {agreement}"
    );

    let again = run_quantized_fleet(fleet_config(blackout, Some(recovery)), &trace);
    assert_eq!(
        m.render(),
        again.render(),
        "a faulted quantized-edge run must stay byte-reproducible"
    );

    // Healthy control: with no faults nothing degrades, so the ledger must
    // be absent — `degraded_agreement.is_some()` iff `degraded_local > 0`.
    let healthy = run_quantized_fleet(fleet_config(FaultPlan::none(), Some(recovery)), &trace);
    assert!(healthy.check().is_empty(), "{:?}", healthy.check());
    assert_eq!(healthy.degraded_local, 0);
    assert!(healthy.degraded_agreement.is_none());
}
