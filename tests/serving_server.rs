//! Serving front-end guarantees: deadline-coalesced micro-batching must be
//! byte-identical to direct `Engine` batching at equal batch composition,
//! overload shedding must be deterministic under a fixed trace, and the
//! bounded admission queue must reject with typed backpressure.

use appeal_hw::CostBudget;
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::server::trace::{TraceShape, TraceSpec};
use appealnet_core::server::{Admission, MicroBatcher, Server, ServerConfig, ShedConfig};
use appealnet_core::{
    CoreError, Engine, InferenceRequest, InferenceResponse, ThresholdPolicy, TwoHeadNet,
};
use std::time::Duration;

const MS: u64 = 1_000_000;

/// Identically-seeded engines: same weights, same policy, chosen max_batch.
fn engine(max_batch: usize, delta: f64) -> Engine {
    let mut rng = SeededRng::new(5);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
    Engine::builder()
        .appealnet(TwoHeadNet::from_parts(little, &mut rng))
        .big(big)
        .policy(ThresholdPolicy::new(delta).unwrap())
        .max_batch(max_batch)
        .build()
        .unwrap()
}

fn images(n: usize) -> Vec<Tensor> {
    let mut rng = SeededRng::new(41);
    (0..n)
        .map(|_| Tensor::randn(&[3, 12, 12], &mut rng))
        .collect()
}

fn assert_bit_identical(a: &InferenceResponse, b: &InferenceResponse) {
    assert_eq!(a.id, b.id);
    assert_eq!(a.label, b.label);
    assert_eq!(a.score.to_bits(), b.score.to_bits(), "request {}", a.id);
    assert_eq!(a.route, b.route);
    assert_eq!(a.cost, b.cost);
}

/// Deadline-triggered flushes and size-triggered flushes must produce
/// byte-identical responses to direct `Engine` micro-batching when the batch
/// composition is equal ([4, 4, 4] here).
#[test]
fn deadline_and_size_flushes_match_direct_engine_byte_identically() {
    let inputs = images(12);

    // Path A — direct Engine batching: submit 4, flush, repeat.
    let mut direct = engine(64, 0.5);
    let mut direct_responses = Vec::new();
    for (i, image) in inputs.iter().enumerate() {
        direct
            .submit(InferenceRequest::new(i as u64, image.clone()))
            .unwrap();
        if (i + 1) % 4 == 0 {
            direct_responses.extend(direct.flush().unwrap());
        }
    }

    // Path B — size-triggered: max_batch 4 flushes automatically.
    let mut by_size = MicroBatcher::new(engine(4, 0.5), Duration::from_secs(600), None).unwrap();
    let mut size_responses = Vec::new();
    for (i, image) in inputs.iter().enumerate() {
        match by_size
            .offer(0, 0, InferenceRequest::new(i as u64, image.clone()))
            .unwrap()
        {
            Admission::Flushed(batch) => {
                size_responses.extend(batch.into_iter().map(|cr| cr.response))
            }
            Admission::Queued => {}
            Admission::Shed => unreachable!("no shed policy configured"),
        }
    }

    // Path C — deadline-triggered: max_batch 64 never fills; every group of
    // 4 is flushed by the 1 ms deadline in virtual time.
    let mut by_deadline =
        MicroBatcher::new(engine(64, 0.5), Duration::from_millis(1), None).unwrap();
    let mut deadline_responses = Vec::new();
    for (group, chunk) in inputs.chunks(4).enumerate() {
        let t0 = group as u64 * 10 * MS;
        for (j, image) in chunk.iter().enumerate() {
            let id = (group * 4 + j) as u64;
            assert!(matches!(
                by_deadline
                    .offer(t0 + j as u64, 0, InferenceRequest::new(id, image.clone()))
                    .unwrap(),
                Admission::Queued
            ));
        }
        assert!(by_deadline.poll(t0 + MS - 1).unwrap().is_none());
        let (trigger, batch) = by_deadline.poll(t0 + MS).unwrap().unwrap();
        assert_eq!(
            trigger,
            appealnet_core::server::FlushTrigger::Deadline,
            "group {group} must flush on deadline, not size"
        );
        deadline_responses.extend(batch.into_iter().map(|cr| cr.response));
    }

    assert_eq!(direct_responses.len(), 12);
    assert_eq!(size_responses.len(), 12);
    assert_eq!(deadline_responses.len(), 12);
    for i in 0..12 {
        assert_bit_identical(&direct_responses[i], &size_responses[i]);
        assert_bit_identical(&direct_responses[i], &deadline_responses[i]);
    }
    // The stats agree too: 3 batches of 4 everywhere.
    assert_eq!(by_size.stats().size_flushes, 3);
    assert_eq!(by_deadline.stats().deadline_flushes, 3);
    assert_eq!(by_size.stats().engine.batches, 3);
    assert_eq!(by_deadline.stats().engine.batches, 3);
}

/// Replaying one fixed bursty trace through identically-seeded batchers
/// must shed exactly the same requests with exactly the same answers.
#[test]
fn overload_shedding_is_deterministic_under_a_fixed_trace() {
    let spec = TraceSpec {
        shape: TraceShape::Bursty { burst: 8 },
        requests: 64,
        mean_gap_nanos: MS / 4,
        clients: 3,
        seed: 99,
    };

    let run = || {
        // δ = 1.0 forces every answered request to appeal. The 16-request
        // window is deliberately misaligned with the 8-request bursts, so
        // each burst's flush charges the meter mid-window and the ≈2.5
        // offloads of budget must shed the tail of every window.
        let offload = engine(8, 1.0).offload_cost();
        let mut mb = MicroBatcher::new(
            engine(8, 1.0),
            Duration::from_millis(1),
            Some(ShedConfig {
                budget: CostBudget::energy_mj(offload.energy_mj * 2.5),
                window: 16,
            }),
        )
        .unwrap();
        let inputs = images(64);
        let mut shed_ids = Vec::new();
        let mut answers = Vec::new();
        for (i, event) in spec.events().into_iter().enumerate() {
            // Deadlines that came due before this arrival fire first, as
            // they would in real time.
            if let Some((_, batch)) = mb.poll(event.at_nanos).unwrap() {
                answers.extend(batch.into_iter().map(|cr| cr.response));
            }
            let request = InferenceRequest::new(i as u64, inputs[i].clone());
            match mb.offer(event.at_nanos, event.client, request).unwrap() {
                Admission::Shed => shed_ids.push(i as u64),
                Admission::Flushed(batch) => {
                    answers.extend(batch.into_iter().map(|cr| cr.response))
                }
                Admission::Queued => {}
            }
        }
        answers.extend(
            mb.drain(spec.span_nanos() + MS)
                .unwrap()
                .into_iter()
                .map(|cr| cr.response),
        );
        (shed_ids, answers, mb.stats())
    };

    let (shed_a, answers_a, stats_a) = run();
    let (shed_b, answers_b, stats_b) = run();
    assert_eq!(shed_a, shed_b, "shed pattern must replay identically");
    assert_eq!(answers_a.len(), answers_b.len());
    for (a, b) in answers_a.iter().zip(answers_b.iter()) {
        assert_bit_identical(a, b);
    }
    // `engine.busy_seconds` is wall-clock, so compare the deterministic
    // counters rather than whole-struct equality.
    assert_eq!(
        (
            stats_a.offered,
            stats_a.admitted,
            stats_a.answered,
            stats_a.shed
        ),
        (
            stats_b.offered,
            stats_b.admitted,
            stats_b.answered,
            stats_b.shed
        ),
    );
    assert_eq!(
        (
            stats_a.size_flushes,
            stats_a.deadline_flushes,
            stats_a.drain_flushes
        ),
        (
            stats_b.size_flushes,
            stats_b.deadline_flushes,
            stats_b.drain_flushes
        ),
    );
    assert_eq!(stats_a.clients, stats_b.clients);
    assert!(
        !shed_a.is_empty() && shed_a.len() < 64,
        "the trace must actually overload the budget without starving it: {} shed",
        shed_a.len()
    );
    assert_eq!(stats_a.answered + stats_a.shed, 64);
    assert_eq!(stats_a.engine.requests, stats_a.answered);
    assert_eq!(
        stats_a.engine.offloaded, stats_a.answered,
        "δ = 1.0 must appeal every answered request"
    );
}

/// The bounded admission queue rejects with typed backpressure once
/// capacity in-flight requests are outstanding.
#[test]
fn full_admission_queue_rejects_with_typed_overload() {
    let server = Server::start(
        engine(64, 0.5),
        ServerConfig {
            queue_capacity: 3,
            // Nothing can flush before the deadline, so the first three
            // admissions stay outstanding deterministically.
            deadline: Duration::from_secs(600),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let inputs = images(4);
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            handle
                .submit(7, InferenceRequest::new(i as u64, inputs[i].clone()))
                .unwrap()
        })
        .collect();
    assert_eq!(
        handle
            .submit(7, InferenceRequest::new(3, inputs[3].clone()))
            .unwrap_err(),
        CoreError::Overloaded { capacity: 3 }
    );
    // Shutdown drains the admitted three; their tickets resolve.
    let (engine_back, stats) = server.shutdown().unwrap();
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(ticket.wait().unwrap().response.id, i as u64);
    }
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.answered, 3);
    assert_eq!(stats.drain_flushes, 1);
    assert!(stats.rejection_rate() > 0.0);
    assert_eq!(engine_back.pending(), 0, "no state left behind");
}

/// The engine is per-sample pure, so whatever micro-batch composition the
/// threaded server's real-time coalescing produces, each answer must be
/// bit-identical to a single-request reference evaluation.
#[test]
fn threaded_server_answers_match_single_request_reference() {
    let mut reference = engine(1, 0.5);
    let inputs = images(10);
    let expected: Vec<InferenceResponse> = inputs
        .iter()
        .enumerate()
        .map(|(i, image)| {
            reference
                .submit(InferenceRequest::new(i as u64, image.clone()))
                .unwrap()
                .expect("max_batch 1 answers immediately")
                .remove(0)
        })
        .collect();

    let server = Server::start(
        engine(4, 0.5),
        ServerConfig {
            queue_capacity: 32,
            deadline: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let tickets: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, image)| {
            handle
                .submit(
                    (i % 3) as u32,
                    InferenceRequest::new(i as u64, image.clone()),
                )
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let served = ticket.wait().unwrap();
        assert_bit_identical(&served.response, &expected[i]);
    }
    let (_, stats) = server.shutdown().unwrap();
    assert_eq!(stats.answered, 10);
    assert_eq!(stats.shed + stats.rejected, 0);
    assert_eq!(stats.clients.len(), 3);
    let ledger_total: u64 = stats.clients.iter().map(|c| c.answered).sum();
    assert_eq!(ledger_total, 10, "every answer is attributed to a client");
}
