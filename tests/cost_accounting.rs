//! Cross-crate consistency of the cost accounting: the FLOP counts reported
//! by the model zoo, the Eq. 15 system cost computed by `appealnet-core`, and
//! the energy/latency derived by `appeal-hw` must all tell the same story.

use appeal_hw::{DeviceSpec, LinkSpec, SystemModel};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{Layer, SeededRng, Tensor};
use appealnet_core::metrics::routed_metrics;
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn model_zoo_flops_match_layer_sums() {
    let mut rng = SeededRng::new(1);
    for family in ModelFamily::little_families() {
        let model = ModelSpec::little(family, [3, 12, 12], 10).build(&mut rng);
        let by_parts = model.backbone.flops(&[3, 12, 12])
            + model.head.flops(&model.backbone.output_shape(&[3, 12, 12]));
        assert_eq!(model.total_flops(), by_parts, "{family}");
    }
}

#[test]
fn predictor_head_overhead_is_negligible_for_every_family() {
    // The paper argues the predictor head adds minimal overhead; verify the
    // claim for every little family in the zoo.
    let mut rng = SeededRng::new(2);
    for family in ModelFamily::little_families() {
        let parts = ModelSpec::little(family, [3, 12, 12], 10).build(&mut rng);
        let plain_flops = parts.total_flops();
        let net = TwoHeadNet::from_parts(parts, &mut rng);
        let overhead = (net.flops() - plain_flops) as f64 / plain_flops as f64;
        assert!(
            overhead < 0.02,
            "{family}: predictor head adds {:.2}% FLOPs",
            overhead * 100.0
        );
    }
}

#[test]
fn eq15_cost_matches_hw_model_expected_flops() {
    let little = 130_000u64;
    let big = 3_200_000u64;
    let n = 100;
    // Route 80% to the edge.
    let keep: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
    let correct = vec![true; n];
    let m = routed_metrics(&keep, &correct, &correct, little, big, 0.5);
    assert!((m.skipping_rate - 0.8).abs() < 1e-9);

    let hw = SystemModel::typical();
    let expected = hw.expected_cost(m.skipping_rate, little, big, 1728);
    assert!(
        (m.overall_flops - expected.flops as f64).abs() <= 1.0,
        "core Eq.15 flops {} vs hw model flops {}",
        m.overall_flops,
        expected.flops
    );
}

#[test]
fn energy_ordering_follows_flops_ordering_for_same_link() {
    let hw = SystemModel::new(
        DeviceSpec::mobile_soc(),
        DeviceSpec::cloud_gpu(),
        LinkSpec::wifi(),
    );
    let little = 130_000u64;
    let big = 3_200_000u64;
    let bytes = 1728;
    let mut last_energy = -1.0f64;
    // As the skipping rate drops, both FLOPs and energy must rise.
    for sr in [1.0, 0.9, 0.7, 0.5, 0.2, 0.0] {
        let c = hw.expected_cost(sr, little, big, bytes);
        assert!(c.energy_mj > last_energy);
        last_energy = c.energy_mj;
    }
}

#[test]
fn measured_forward_flops_scale_with_reported_flops() {
    // The reported FLOPs are static estimates; verify they at least order the
    // model families by actual arithmetic work (parameter count is a proxy).
    let mut rng = SeededRng::new(3);
    let mut little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let mut big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
    assert!(big.total_flops() > 10 * little.total_flops());
    assert!(big.param_count() > little.param_count());
    // And both actually run.
    let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
    assert!(little.forward(&x, false).all_finite());
    assert!(big.forward(&x, false).all_finite());
}
