//! Determinism guards for the fleet simulator.
//!
//! The simulator's contract is byte-reproducibility: identical seeds must
//! render identical metrics regardless of how many times the simulation
//! runs or how the cloud's forward passes are sharded (`ChunkPolicy` is the
//! in-process stand-in for varying worker-thread counts, per
//! `tests/determinism.rs`). These tests also pin the adaptive-budget
//! experiment's headline result: under a degraded link the controller
//! offloads less than a static fleet.

use appeal_hw::{DeviceSpec, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::two_head::TwoHeadNet;
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    AdaptiveConfig, CloudConfig, Degradation, FleetConfig, FleetMetrics, FleetSim, GossipConfig,
};

fn config(seed: u64, chunk: ChunkPolicy) -> FleetConfig {
    FleetConfig {
        nodes: 4,
        delta: 0.9,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: CloudConfig {
            device: DeviceSpec::cloud_gpu(),
            max_batch: 8,
            deadline_ms: 2.0,
            batch_overhead_ms: 1.0,
            shed_backlog_ms: None,
        },
        link: StochasticLink::lte(),
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery: None,
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults: FaultPlan::none(),
        slo_ms: 100.0,
        chunk,
        seed,
    }
}

fn trace(requests: usize, mean_gap_nanos: u64) -> TraceSpec {
    TraceSpec {
        shape: TraceShape::Bursty { burst: 4 },
        requests,
        mean_gap_nanos,
        clients: 16,
        seed: 2021,
    }
}

fn run(config: FleetConfig, trace: &TraceSpec) -> FleetMetrics {
    let mut rng = SeededRng::new(2021);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
    FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config)
        .expect("valid config")
        .run(trace)
}

#[test]
fn same_seed_runs_render_identical_bytes() {
    let spec = trace(96, 2_000_000);
    let first = run(config(7, ChunkPolicy::sequential()), &spec);
    let second = run(config(7, ChunkPolicy::sequential()), &spec);
    assert!(first.check().is_empty(), "{:?}", first.check());
    assert_eq!(
        first.render(),
        second.render(),
        "same seed must render byte-identical metrics"
    );
}

#[test]
fn sharded_cloud_passes_do_not_change_the_metrics() {
    // The cloud labels come from `parallel::classifier_logits`, whose argmax
    // rows are bit-identical across shardings; the fleet metrics must
    // inherit that.
    let spec = trace(96, 2_000_000);
    let sequential = run(config(7, ChunkPolicy::sequential()), &spec);
    for chunk in [
        ChunkPolicy {
            min_shard: 8,
            max_shards: 2,
        },
        ChunkPolicy {
            min_shard: 4,
            max_shards: 8,
        },
    ] {
        let sharded = run(config(7, chunk), &spec);
        assert_eq!(
            sequential.render(),
            sharded.render(),
            "chunk {chunk:?} must not change rendered metrics"
        );
    }
}

#[test]
fn different_seeds_change_the_link_weather() {
    let spec = trace(96, 2_000_000);
    let a = run(config(7, ChunkPolicy::sequential()), &spec);
    let b = run(config(8, ChunkPolicy::sequential()), &spec);
    // Different seeds resample images and link jitter; some observable
    // metric must move (latency percentiles are the most sensitive).
    assert_ne!(
        a.render(),
        b.render(),
        "different seeds should not collide byte-for-byte"
    );
}

#[test]
fn adaptive_budget_offloads_less_than_static_when_the_link_degrades() {
    // Mirror of the fleet_sim binary's section D, scaled down for a test:
    // everything wants the cloud (δ = 1), the link degrades a third of the
    // way in, and the adaptive fleet must appeal less than the static one
    // afterwards while keeping the metrics internally consistent.
    let requests = 256;
    let mean_gap_nanos = 8_000_000;
    let spec = TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos,
        clients: 16,
        seed: 2021,
    };
    let degrade = Some(Degradation {
        after_nanos: requests as u64 * mean_gap_nanos / 3,
        severity: 4.0,
    });
    let mut static_config = config(7, ChunkPolicy::sequential());
    static_config.delta = 1.0;
    static_config.degrade = degrade;
    let mut adaptive_config = static_config.clone();
    let est_ms = 51.0; // ~one lte appeal round-trip (see appeal_hw presets)
    adaptive_config.adaptive = Some(AdaptiveConfig {
        window: 8,
        budget_ms: est_ms * 10.0,
        target_ms: est_ms * 1.75,
        floor_ms: est_ms * 2.0,
    });
    let static_m = run(static_config, &spec);
    let adaptive_m = run(adaptive_config, &spec);
    assert!(static_m.check().is_empty(), "{:?}", static_m.check());
    assert!(adaptive_m.check().is_empty(), "{:?}", adaptive_m.check());
    let static_post = static_m.post_degrade.expect("degrade configured");
    let adaptive_post = adaptive_m.post_degrade.expect("degrade configured");
    assert!(
        adaptive_post.appeal_rate < static_post.appeal_rate,
        "adaptive fleet must offload less after degradation: {} vs {}",
        adaptive_post.appeal_rate,
        static_post.appeal_rate
    );
    assert!(
        adaptive_m.budget_denied > 0,
        "the tightened budget must actually deny appeals"
    );
}

#[test]
fn homogeneous_node_links_replay_the_shared_link_bytes() {
    // `node_links` with every slot equal to the shared preset must be
    // indistinguishable from `None`: `StochasticLink` sampling is stateless,
    // so per-node clones draw the same sequence as a shared clone.
    let spec = trace(96, 2_000_000);
    let shared = run(config(7, ChunkPolicy::sequential()), &spec);
    let mut per_node = config(7, ChunkPolicy::sequential());
    per_node.node_links = Some(vec![StochasticLink::lte(); 4]);
    let explicit = run(per_node, &spec);
    assert_eq!(
        shared.render(),
        explicit.render(),
        "homogeneous per-node links must replay the shared-link bytes"
    );
}

#[test]
fn mixed_node_links_change_the_weather_and_still_reconcile() {
    let spec = trace(96, 2_000_000);
    let shared = run(config(7, ChunkPolicy::sequential()), &spec);
    let mut mixed_config = config(7, ChunkPolicy::sequential());
    mixed_config.node_links = Some(vec![
        StochasticLink::lte(),
        StochasticLink::wifi(),
        StochasticLink::lte(),
        StochasticLink::wifi(),
    ]);
    let mixed = run(mixed_config.clone(), &spec);
    assert!(mixed.check().is_empty(), "{:?}", mixed.check());
    assert_ne!(
        shared.render(),
        mixed.render(),
        "a wifi/lte mix must actually change observable behaviour"
    );
    let again = run(mixed_config, &spec);
    assert_eq!(
        mixed.render(),
        again.render(),
        "mixed links must stay byte-reproducible"
    );
}
