//! Integration tests of the black-box (oracle cloud) pipeline and of the
//! runtime collaborative-system deployment path.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_hw::SystemModel;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{table2, ExperimentContext, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use appealnet_core::scores::ScoreKind;
use appealnet_core::system::CollaborativeSystem;

#[test]
fn blackbox_pipeline_and_table2_row() {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 555);
    let prepared = PreparedExperiment::prepare(
        DatasetPreset::Cifar10Like,
        ModelFamily::ShuffleNetLike,
        CloudMode::BlackBox,
        &ctx,
    );
    // Oracle cloud: the big network is always correct and AccI is always defined.
    assert_eq!(prepared.big_accuracy, 1.0);
    let art = prepared.artifacts(ScoreKind::AppealNetQ);
    assert!(art.big_correct.iter().all(|&c| c));

    let row = table2::run(&prepared);
    // The appealing rate needed must be monotone in the AccI target and the
    // oracle makes every target reachable.
    let ars: Vec<f64> = row
        .entries
        .iter()
        .map(|e| {
            e.appealnet_appealing_rate
                .expect("reachable with an oracle")
        })
        .collect();
    for w in ars.windows(2) {
        assert!(w[1] + 1e-9 >= w[0]);
    }
}

#[test]
fn deployed_system_routes_consistently_with_threshold() {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 777);
    let preset = DatasetPreset::GtsrbLike;
    let pair = preset.spec(ctx.fidelity).generate();
    let prepared = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    let models = prepared.models;
    let mut system =
        CollaborativeSystem::new(models.appealnet, models.big, 0.5, SystemModel::typical())
            .expect("0.5 is a valid threshold");

    let outcomes = system.classify(pair.test.images());
    assert_eq!(outcomes.len(), pair.test.len());
    for o in &outcomes {
        assert!(o.label < preset.num_classes());
        assert_eq!(o.offloaded, (o.score as f64) < 0.5);
    }

    // Raising the threshold can only increase (or keep) the number of
    // offloaded inputs, and with it the total energy.
    let low = CollaborativeSystem::total_cost(&outcomes);
    system
        .set_threshold(0.95)
        .expect("0.95 is a valid threshold");
    let outcomes_high = system.classify(pair.test.images());
    let high = CollaborativeSystem::total_cost(&outcomes_high);
    let offloaded_low = outcomes.iter().filter(|o| o.offloaded).count();
    let offloaded_high = outcomes_high.iter().filter(|o| o.offloaded).count();
    assert!(offloaded_high >= offloaded_low);
    assert!(high.energy_mj + 1e-9 >= low.energy_mj);
}

#[test]
fn whitebox_and_blackbox_share_dataset_but_differ_in_objective() {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 999);
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();
    let white = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    let black = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::BlackBox,
        &ctx,
    );
    // Same little baseline (same seed, same data), so its accuracy agrees.
    assert!((white.little_accuracy - black.little_accuracy).abs() < 1e-9);
    // The big reference differs: trained model vs oracle.
    assert!(white.big_accuracy <= 1.0);
    assert_eq!(black.big_accuracy, 1.0);
}
