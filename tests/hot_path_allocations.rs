//! Allocation guard for the serving hot path.
//!
//! The kernel layer (`appeal_tensor::kernels`) draws im2col matrices and
//! GEMM packing panels from per-layer high-water scratch arenas and counts
//! every buffer growth / reuse in process-wide atomics. This test pins down
//! the PR-level guarantee: once the engine has warmed up, steady-state
//! `Engine::submit` traffic performs **zero** scratch allocations — every
//! im2col and packing buffer is a reuse — and eval-mode forward passes no
//! longer clone their inputs into training caches.
//!
//! Kept as the only test in this file so no concurrently running test can
//! perturb the process-wide counters.

use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::kernels;
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::serve::{Engine, InferenceRequest, ThresholdPolicy};
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn steady_state_submit_reuses_scratch_without_allocating() {
    let mut rng = SeededRng::new(31_337);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 6).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 6).build(&mut rng);
    let net = TwoHeadNet::from_parts(little, &mut rng);
    // max_batch 1: every submit answers immediately, the worst case for
    // per-request overhead. δ = 1.0 forces every request through both the
    // edge scorer and the big network, exercising every conv/dense scratch.
    let mut engine = Engine::builder()
        .appealnet(net)
        .big(big)
        .policy(ThresholdPolicy::new(1.0).unwrap())
        .max_batch(1)
        .build()
        .unwrap();

    // Warm-up: the first requests grow each layer's scratch to its
    // high-water mark.
    for id in 0..3u64 {
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let out = engine.submit(InferenceRequest::new(id, image)).unwrap();
        assert!(out.is_some(), "max_batch 1 answers every submit");
    }

    // Steady state: more single-request traffic must not allocate scratch.
    let before = kernels::scratch_stats();
    let steady_requests = 16u64;
    for id in 0..steady_requests {
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let out = engine
            .submit(InferenceRequest::new(100 + id, image))
            .unwrap();
        assert!(out.is_some());
    }
    let after = kernels::scratch_stats();

    assert_eq!(
        after.allocs, before.allocs,
        "steady-state submits must not grow any scratch buffer \
         (allocs {} -> {})",
        before.allocs, after.allocs
    );
    let reuses = after.reuses - before.reuses;
    assert!(
        reuses >= steady_requests,
        "steady-state submits must reuse warmed scratch buffers \
         (saw {reuses} reuses over {steady_requests} requests)"
    );
    assert_eq!(engine.stats().requests, 3 + steady_requests);
}
