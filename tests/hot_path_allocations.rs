//! Allocation guard for the serving hot path.
//!
//! The kernel layer (`appeal_tensor::kernels`) draws im2col matrices and
//! GEMM packing panels from high-water scratch arenas — retained per thread
//! and, for spawned GEMM row bands, in a shared checkout pool — and counts
//! every buffer growth / reuse in process-wide atomics. This test pins down
//! the PR-level guarantees: once the engine has warmed up, steady-state
//! `Engine::submit` traffic performs **zero** scratch allocations — every
//! im2col and packing buffer is a reuse — eval-mode forward passes do not
//! clone their inputs into training caches, and (new with the persistent
//! rayon worker pool) steady-state **multi-band** GEMMs perform zero packing
//! allocations no matter which pool worker picks up which band.
//!
//! Kept as the only test in this file so no concurrently running test can
//! perturb the process-wide counters. `RAYON_NUM_THREADS` is pinned to 4 at
//! the very top — before the first rayon call caches the thread count — so
//! the row-band parallel path actually engages even on a single-core host.

use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::kernels;
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::serve::{Engine, InferenceRequest, ThresholdPolicy};
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn steady_state_submit_reuses_scratch_without_allocating() {
    // Must precede every rayon touch in this process: the shim caches its
    // thread count (and sizes its persistent pool) on first use.
    std::env::set_var("RAYON_NUM_THREADS", "4");

    let mut rng = SeededRng::new(31_337);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 6).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 6).build(&mut rng);
    let net = TwoHeadNet::from_parts(little, &mut rng);
    // max_batch 1: every submit answers immediately, the worst case for
    // per-request overhead. δ = 1.0 forces every request through both the
    // edge scorer and the big network, exercising every conv/dense scratch.
    let mut engine = Engine::builder()
        .appealnet(net)
        .big(big)
        .policy(ThresholdPolicy::new(1.0).unwrap())
        .max_batch(1)
        .build()
        .unwrap();

    // Warm-up: the first requests grow each layer's scratch to its
    // high-water mark.
    for id in 0..3u64 {
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let out = engine.submit(InferenceRequest::new(id, image)).unwrap();
        assert!(out.is_some(), "max_batch 1 answers every submit");
    }

    // Steady state: more single-request traffic must not allocate scratch.
    let before = kernels::scratch_stats();
    let steady_requests = 16u64;
    for id in 0..steady_requests {
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let out = engine
            .submit(InferenceRequest::new(100 + id, image))
            .unwrap();
        assert!(out.is_some());
    }
    let after = kernels::scratch_stats();

    assert_eq!(
        after.allocs, before.allocs,
        "steady-state submits must not grow any scratch buffer \
         (allocs {} -> {})",
        before.allocs, after.allocs
    );
    let reuses = after.reuses - before.reuses;
    assert!(
        reuses >= steady_requests,
        "steady-state submits must reuse warmed scratch buffers \
         (saw {reuses} reuses over {steady_requests} requests)"
    );
    assert_eq!(engine.stats().requests, 3 + steady_requests);

    multi_band_gemm_reuses_pooled_band_scratch(&mut rng);
}

/// Steady-state multi-band GEMMs perform zero packing allocations: spawned
/// bands check their panels out of the shared band pool, whose size
/// converges to the maximum number of concurrent bands — so reuse holds
/// regardless of which persistent pool worker runs which band.
fn multi_band_gemm_reuses_pooled_band_scratch(rng: &mut SeededRng) {
    assert!(
        rayon::current_num_threads() > 1,
        "RAYON_NUM_THREADS=4 must be set before the first rayon call"
    );
    // 256^3 = 16.7M MACs — far above the row-parallel threshold, so the
    // GEMM splits into 4 row bands: one on the calling thread, three on
    // persistent pool workers drawing from the band scratch pool.
    let a = Tensor::randn(&[256, 256], rng);
    let b = Tensor::randn(&[256, 256], rng);

    // Warm-up: grows the caller's packing panels and the band pool to their
    // high-water marks.
    let warm = a.matmul(&b);

    let before = kernels::scratch_stats();
    let steady_rounds = 6u64;
    let mut last = warm.clone();
    for _ in 0..steady_rounds {
        last = a.matmul(&b);
    }
    let after = kernels::scratch_stats();

    assert_eq!(
        after.allocs, before.allocs,
        "steady-state multi-band GEMMs must not grow any packing buffer \
         (allocs {} -> {})",
        before.allocs, after.allocs
    );
    assert!(
        after.reuses - before.reuses >= steady_rounds,
        "multi-band GEMMs must reuse pooled band scratch"
    );
    // Sanity: the banded result matches the warm-up run bit-for-bit
    // (determinism across repeated parallel executions).
    for (x, y) in warm.data().iter().zip(last.data().iter()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "banded GEMM must be deterministic"
        );
    }
}
