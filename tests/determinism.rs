//! Determinism guards for the parallel batch-evaluation engine.
//!
//! The rayon-backed engine shards evaluation passes across worker threads;
//! these tests pin down that (a) two identical `prepare` runs produce
//! byte-identical serialized `EvaluationArtifacts`, and (b) a sharded
//! evaluation is bit-identical to a sequential one on the same model, so no
//! nondeterministic reduction order can creep into results.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::experiments::{ExperimentContext, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn prepare_produces_byte_identical_artifacts_across_runs() {
    let run = || {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 2468);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        prepared
            .score_kinds()
            .into_iter()
            .map(|kind| {
                serde_json::to_string(prepared.artifacts(kind))
                    .expect("artifacts serialize to JSON")
            })
            .collect::<Vec<String>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), 4, "one artifact set per score kind");
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a, b, "serialized artifacts must be byte-identical");
    }
}

#[test]
fn sharded_evaluation_is_bit_identical_to_sequential() {
    // Evaluation determinism does not depend on training: a freshly
    // initialized two-head network suffices and keeps the test fast.
    let mut rng = SeededRng::new(97);
    let parts = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let mut net = TwoHeadNet::from_parts(parts, &mut rng);
    let images = appeal_tensor::Tensor::randn(&[40, 3, 12, 12], &mut rng);

    let sequential = net.evaluate_with_policy(&images, 8, &ChunkPolicy::sequential());
    let sharded = net.evaluate_with_policy(
        &images,
        8,
        &ChunkPolicy {
            min_shard: 4,
            max_shards: 8,
        },
    );
    assert_eq!(sequential.q.len(), sharded.q.len());
    for (a, b) in sequential.q.iter().zip(sharded.q.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "q scores must be bit-identical");
    }
    assert_eq!(sequential.logits.shape(), sharded.logits.shape());
    for (a, b) in sequential
        .logits
        .data()
        .iter()
        .zip(sharded.logits.data().iter())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "logits must be bit-identical");
    }
}
