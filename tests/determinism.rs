//! Determinism guards for the parallel batch-evaluation engine.
//!
//! The rayon-backed engine shards evaluation passes across worker threads;
//! these tests pin down that (a) two identical `prepare` runs produce
//! byte-identical serialized `EvaluationArtifacts`, and (b) a sharded
//! evaluation is bit-identical to a sequential one on the same model, so no
//! nondeterministic reduction order can creep into results.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_hw::SystemModel;
use appeal_models::{ClassifierParts, ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::experiments::{ExperimentContext, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::serve::{Engine, InferenceRequest, InferenceResponse, ThresholdPolicy};
use appealnet_core::system::{CollaborativeSystem, RoutingOutcome};
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn prepare_produces_byte_identical_artifacts_across_runs() {
    let run = || {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 2468);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        prepared
            .score_kinds()
            .into_iter()
            .map(|kind| {
                serde_json::to_string(prepared.artifacts(kind))
                    .expect("artifacts serialize to JSON")
            })
            .collect::<Vec<String>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), 4, "one artifact set per score kind");
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a, b, "serialized artifacts must be byte-identical");
    }
}

#[test]
fn sharded_evaluation_is_bit_identical_to_sequential() {
    // Evaluation determinism does not depend on training: a freshly
    // initialized two-head network suffices and keeps the test fast.
    let mut rng = SeededRng::new(97);
    let parts = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let mut net = TwoHeadNet::from_parts(parts, &mut rng);
    let images = appeal_tensor::Tensor::randn(&[40, 3, 12, 12], &mut rng);

    let sequential = net.evaluate_with_policy(&images, 8, &ChunkPolicy::sequential());
    let sharded = net.evaluate_with_policy(
        &images,
        8,
        &ChunkPolicy {
            min_shard: 4,
            max_shards: 8,
        },
    );
    assert_eq!(sequential.q.len(), sharded.q.len());
    for (a, b) in sequential.q.iter().zip(sharded.q.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "q scores must be bit-identical");
    }
    assert_eq!(sequential.logits.shape(), sharded.logits.shape());
    for (a, b) in sequential
        .logits
        .data()
        .iter()
        .zip(sharded.logits.data().iter())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "logits must be bit-identical");
    }
}

// ---------------------------------------------------------------------------
// Engine / CollaborativeSystem equivalence
// ---------------------------------------------------------------------------

/// Builds an identically seeded (two-head, big) model pair.
fn seeded_models() -> (TwoHeadNet, ClassifierParts) {
    let mut rng = SeededRng::new(4242);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 6).build(&mut rng);
    let big = ModelSpec::big([3, 12, 12], 6).build(&mut rng);
    (TwoHeadNet::from_parts(little, &mut rng), big)
}

fn assert_equivalent(outcomes: &[RoutingOutcome], responses: &[InferenceResponse], tag: &str) {
    assert_eq!(outcomes.len(), responses.len(), "{tag}: length mismatch");
    for (i, (o, r)) in outcomes.iter().zip(responses.iter()).enumerate() {
        assert_eq!(o.label, r.label, "{tag}: label diverges at sample {i}");
        assert_eq!(
            o.offloaded,
            r.route.is_cloud(),
            "{tag}: decision diverges at sample {i}"
        );
        assert_eq!(
            o.score.to_bits(),
            r.score.to_bits(),
            "{tag}: score is not bit-identical at sample {i}"
        );
        assert_eq!(o.cost, r.cost, "{tag}: cost diverges at sample {i}");
    }
}

#[test]
fn engine_with_threshold_policy_matches_collaborative_system() {
    // The legacy fixed-threshold wrapper and a directly built engine must
    // produce byte-identical labels, routing decisions, scores and costs
    // across batch sizes and chunk policies (i.e. thread counts).
    let chunk_policies = [
        ChunkPolicy::sequential(),
        ChunkPolicy {
            min_shard: 8,
            max_shards: 2,
        },
        ChunkPolicy {
            min_shard: 4,
            max_shards: 8,
        },
    ];
    let mut rng = SeededRng::new(99);
    let batches: Vec<Tensor> = [5usize, 17, 48]
        .iter()
        .map(|&n| Tensor::randn(&[n, 3, 12, 12], &mut rng))
        .collect();
    // Reference: the legacy wrapper on the sequential path.
    let (net, big) = seeded_models();
    let mut reference = CollaborativeSystem::with_policy(
        net,
        big,
        0.5,
        SystemModel::typical(),
        ChunkPolicy::sequential(),
    )
    .unwrap();
    let reference_outcomes: Vec<Vec<RoutingOutcome>> =
        batches.iter().map(|b| reference.classify(b)).collect();
    for chunk in chunk_policies {
        let (net, big) = seeded_models();
        let mut engine = Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .hardware(SystemModel::typical())
            .chunk_policy(chunk)
            .build()
            .unwrap();
        for (batch, expected) in batches.iter().zip(reference_outcomes.iter()) {
            let responses = engine.classify_batch(batch).unwrap();
            assert_equivalent(
                expected,
                &responses,
                &format!("chunk {chunk:?}, batch {}", batch.shape()[0]),
            );
        }
    }
}

#[test]
fn micro_batched_submission_matches_whole_batch_classification() {
    // Feeding single requests through the micro-batch queue must reproduce
    // the whole-batch path bit-for-bit, for every micro-batch capacity.
    let mut rng = SeededRng::new(77);
    let images = Tensor::randn(&[23, 3, 12, 12], &mut rng);
    let (net, big) = seeded_models();
    let mut whole = Engine::builder().appealnet(net).big(big).build().unwrap();
    let expected = whole.classify_batch(&images).unwrap();
    for max_batch in [1usize, 4, 7, 23, 64] {
        let (net, big) = seeded_models();
        let mut engine = Engine::builder()
            .appealnet(net)
            .big(big)
            .max_batch(max_batch)
            .build()
            .unwrap();
        let mut responses = Vec::new();
        for i in 0..images.shape()[0] {
            if let Some(batch) = engine
                .submit(InferenceRequest::new(i as u64, images.select_rows(&[i])))
                .unwrap()
            {
                responses.extend(batch);
            }
        }
        responses.extend(engine.flush().unwrap());
        assert_eq!(responses.len(), expected.len());
        for (i, (a, b)) in expected.iter().zip(responses.iter()).enumerate() {
            assert_eq!(b.id, i as u64, "max_batch {max_batch}: id order");
            assert_eq!(a.label, b.label, "max_batch {max_batch}, sample {i}");
            assert_eq!(a.route, b.route, "max_batch {max_batch}, sample {i}");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "max_batch {max_batch}, sample {i}"
            );
            assert_eq!(a.cost, b.cost, "max_batch {max_batch}, sample {i}");
        }
        assert_eq!(engine.stats().requests, images.shape()[0] as u64);
    }
}
