//! End-to-end integration test of the white-box pipeline: dataset synthesis →
//! training (big, little, joint) → routing artifacts → figure/table queries.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_models::ModelFamily;
use appealnet_core::experiments::{fig4, fig5, table1, ExperimentContext, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use appealnet_core::scores::ScoreKind;
use appealnet_core::tuning::min_cost_for_acci;

fn prepared() -> PreparedExperiment {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 1234);
    PreparedExperiment::prepare(
        DatasetPreset::Cifar10Like,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    )
}

#[test]
fn whitebox_pipeline_produces_consistent_artifacts() {
    let prepared = prepared();

    // All four score kinds evaluated on the same test set.
    for kind in ScoreKind::all() {
        let art = prepared.artifacts(kind);
        assert_eq!(art.len(), 30, "smoke test split has 30 samples");
        assert!(art.scores.iter().all(|s| s.is_finite()));
        // The confidence baselines run the plain little network (no predictor
        // head), so their per-inference cost may be marginally below the
        // two-head model's cost but never above it.
        assert!(art.little_flops <= prepared.little_flops);
        assert!(art.little_flops as f64 >= prepared.little_flops as f64 * 0.98);
        assert_eq!(art.big_flops, prepared.big_flops);
    }

    // Little/big correctness flags must agree across score kinds (they come
    // from the same little-baseline / big models).
    let msp = prepared.artifacts(ScoreKind::Msp);
    let sm = prepared.artifacts(ScoreKind::ScoreMargin);
    assert_eq!(msp.little_correct, sm.little_correct);
    assert_eq!(msp.big_correct, sm.big_correct);

    // The cost model (Eq. 15) must interpolate between edge-only and
    // edge+cloud for every method.
    let art = prepared.artifacts(ScoreKind::AppealNetQ);
    let all_edge = art.at_threshold(-1.0).unwrap();
    let all_cloud = art.at_threshold(2.0).unwrap();
    assert_eq!(all_edge.skipping_rate, 1.0);
    assert_eq!(all_cloud.skipping_rate, 0.0);
    assert!(all_edge.overall_flops < all_cloud.overall_flops);
    let mid = art.at_skipping_rate(0.5).unwrap();
    assert!(mid.overall_flops > all_edge.overall_flops);
    assert!(mid.overall_flops < all_cloud.overall_flops);
}

#[test]
fn skipping_rate_is_monotone_in_threshold() {
    let prepared = prepared();
    let art = prepared.artifacts(ScoreKind::AppealNetQ);
    let mut last_sr = f64::INFINITY;
    for t in art.candidate_thresholds().unwrap() {
        let sr = art.at_threshold(t).unwrap().skipping_rate;
        assert!(sr <= last_sr + 1e-12, "SR must not increase with threshold");
        last_sr = sr;
    }
}

#[test]
fn figure_and_table_queries_run_on_the_same_prepared_system() {
    let prepared = prepared();

    let fig4_result = fig4::run(&prepared, 8);
    assert_eq!(fig4_result.histograms.len(), 2);
    for h in &fig4_result.histograms {
        let total: usize =
            h.correct_counts.iter().sum::<usize>() + h.incorrect_counts.iter().sum::<usize>();
        assert_eq!(total, 30);
    }

    let fig5_result = fig5::run(&prepared);
    assert_eq!(fig5_result.sweep.series.len(), 4);

    let table1_row = table1::run(&prepared);
    assert_eq!(table1_row.entries.len(), 4);
    // Cost targets become monotonically harder: a stricter AccI target can
    // never be cheaper than a looser one for the same method.
    let costs: Vec<_> = table1_row
        .entries
        .iter()
        .filter_map(|e| e.appealnet_cost_mflops)
        .collect();
    for w in costs.windows(2) {
        assert!(
            w[1] + 1e-9 >= w[0],
            "costs {costs:?} must be non-decreasing"
        );
    }
}

#[test]
fn acci_targets_are_reachable_by_offloading_everything() {
    // With a trained big network that beats the little one, AccI = 1.0 is
    // always reachable by appealing every input (threshold above max score).
    let prepared = prepared();
    if prepared.big_accuracy > prepared.little_accuracy {
        for kind in ScoreKind::all() {
            let art = prepared.artifacts(kind);
            let choice = min_cost_for_acci(art, 1.0).unwrap();
            assert!(choice.is_some(), "{kind} could not reach AccI = 1.0");
        }
    }
}
