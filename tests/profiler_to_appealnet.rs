//! Integration test of the full Fig. 3 workflow: hardware profiling selects a
//! little architecture, AppealNet augments it with a predictor head and
//! trains it jointly, and the result deploys on the profiled device.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_hw::{DeviceSpec, HardwareProfiler, LinkSpec, SystemModel};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::experiments::ExperimentContext;
use appealnet_core::loss::{AppealLoss, CloudMode};
use appealnet_core::system::CollaborativeSystem;
use appealnet_core::training::{train_appealnet, train_classifier};
use appealnet_core::two_head::TwoHeadNet;

#[test]
fn fig3_workflow_profiler_to_deployed_system() {
    // 1. Hardware profiler: pick the most capable little model that fits a
    //    mobile SoC with a 5 ms latency budget.
    let device = DeviceSpec::mobile_soc();
    let profiler = HardwareProfiler::new(device.clone(), 5.0).expect("budget is positive");
    let preset = DatasetPreset::Cifar10Like;
    let input_shape = {
        let spec = preset.spec(Fidelity::Smoke);
        [spec.channels, spec.height, spec.width]
    };
    let pool: Vec<ModelSpec> = ModelFamily::little_families()
        .iter()
        .map(|&f| ModelSpec::little(f, input_shape, preset.num_classes()))
        .collect();
    let decision = profiler.select(&pool).expect("a little model must fit");
    assert!(decision.deployable());

    // 2. Train the selected architecture as an AppealNet two-head network
    //    (black-box cloud, smoke scale).
    let ctx = ExperimentContext::new(Fidelity::Smoke, 31);
    let pair = preset.spec(Fidelity::Smoke).generate();
    let mut rng = SeededRng::new(ctx.seed);
    let mut little = decision.spec.build(&mut rng);
    train_classifier(&mut little, &pair.train, &ctx.little_config());
    let mut net = TwoHeadNet::from_parts(little, &mut rng);
    let loss = AppealLoss::new(ctx.beta, CloudMode::BlackBox);
    let report = train_appealnet(&mut net, &pair.train, &loss, &[], &ctx.joint_config());
    assert!(report.final_loss().is_finite());

    // 3. The jointly trained little network still fits the profiled device
    //    (the predictor head overhead is negligible).
    assert!(device.fits(net.param_count() as u64));
    assert!(device.latency_ms(net.flops()) <= 5.0);

    // 4. Deploy it next to a big cloud model and route a batch.
    let big = ModelSpec::big(input_shape, preset.num_classes()).build(&mut rng);
    let hardware = SystemModel::new(device, DeviceSpec::cloud_gpu(), LinkSpec::lte());
    let mut system =
        CollaborativeSystem::new(net, big, 0.5, hardware).expect("0.5 is a valid threshold");
    let outcomes = system.classify(pair.test.images());
    assert_eq!(outcomes.len(), pair.test.len());
    assert!(outcomes.iter().any(|o| !o.offloaded) || outcomes.iter().any(|o| o.offloaded));
}
